"""Tests for curve fitting, sweeps, tables, ASCII plotting and sensitivity analysis."""

from __future__ import annotations


import numpy as np
import pytest

from repro.analysis import (
    PAPER_EQ14_COEFFICIENTS,
    ParameterSweep,
    ascii_chart,
    fit_log_linear,
    format_kv,
    format_table,
    paper_equation_14,
    perturb_initial_quantities,
    perturb_rates,
    write_csv,
)
from repro.errors import AnalysisError, FitError


class TestPaperEquation14:
    def test_value_at_one(self):
        """At MOI = 1 the log and linear terms nearly vanish: P ≈ 15.17%."""
        assert paper_equation_14(1) == pytest.approx(15 + 1 / 6)

    def test_value_at_eight(self):
        assert paper_equation_14(8) == pytest.approx(15 + 18 + 8 / 6)

    def test_monotonically_increasing(self):
        values = [paper_equation_14(m) for m in range(1, 11)]
        assert values == sorted(values)

    def test_domain_restriction(self):
        with pytest.raises(FitError):
            paper_equation_14(0.5)

    def test_clipped_to_100(self):
        assert paper_equation_14(10_000) == 100.0


class TestFitLogLinear:
    def test_recovers_paper_coefficients_from_exact_data(self):
        moi = np.arange(1, 11, dtype=float)
        data = 15 + 6 * np.log2(moi) + moi / 6
        fit = fit_log_linear(moi, data)
        assert fit.coefficients == pytest.approx(PAPER_EQ14_COEFFICIENTS, abs=1e-9)
        assert fit.residual_rms == pytest.approx(0.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_recovers_coefficients_from_noisy_data(self):
        rng = np.random.default_rng(0)
        moi = np.arange(1, 11, dtype=float)
        data = 15 + 6 * np.log2(moi) + moi / 6 + rng.normal(0, 1.0, moi.size)
        fit = fit_log_linear(moi, data)
        assert fit.intercept == pytest.approx(15, abs=3)
        assert fit.log_coefficient == pytest.approx(6, abs=3)
        assert fit.residual_rms < 2.0

    def test_predict(self):
        fit = fit_log_linear([1, 2, 4, 8], [15.17, 21.33, 27.67, 34.33])
        prediction = fit.predict(4.0)
        assert prediction[0] == pytest.approx(27.67, abs=0.5)
        with pytest.raises(FitError):
            fit.predict(0.0)

    def test_summary_text(self):
        fit = fit_log_linear([1, 2, 4, 8], [15.0, 21.0, 27.0, 33.0])
        assert "log2" in fit.summary()

    @pytest.mark.parametrize(
        "x, y",
        [
            ([1, 2], [1, 2]),                 # too few points
            ([1, 2, 3], [1, 2]),              # length mismatch
            ([0, 1, 2], [1, 2, 3]),           # non-positive MOI
            ([2, 2, 2, 2], [1, 1, 1, 1]),     # rank deficient
        ],
    )
    def test_validation(self, x, y):
        with pytest.raises(FitError):
            fit_log_linear(x, y)


class TestSweepAndTables:
    def test_parameter_sweep_collects_rows(self):
        sweep = ParameterSweep("n", [1, 2, 3], lambda n: {"square": n * n})
        result = sweep.run()
        assert result.column("square") == [1, 4, 9]
        assert result.column("n") == [1, 2, 3]
        assert result.columns[0] == "n"

    def test_sweep_progress_callback(self):
        messages = []
        ParameterSweep("g", [10], lambda g: {"v": g}).run(progress=messages.append)
        assert messages == ["g = 10"]

    def test_sweep_unknown_column(self):
        result = ParameterSweep("n", [1], lambda n: {"v": n}).run()
        with pytest.raises(AnalysisError):
            result.column("zzz")

    def test_sweep_requires_values(self):
        with pytest.raises(AnalysisError):
            ParameterSweep("n", [], lambda n: {})

    def test_sweep_csv_roundtrip(self, tmp_path):
        result = ParameterSweep("n", [1, 2], lambda n: {"v": n * 10}).run()
        path = result.to_csv(tmp_path / "sweep.csv")
        text = path.read_text()
        assert "n,v" in text and "2,20" in text

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}], title="T")
        assert text.splitlines()[0] == "T"
        assert "0.125" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"

    def test_format_kv(self):
        text = format_kv({"gamma": 1000.0, "trials": 5})
        assert "gamma" in text and "1000" in text

    def test_write_csv_text(self):
        text = write_csv([{"x": 1, "y": 2}])
        assert text.splitlines()[0] == "x,y"

    def test_write_csv_empty_rejected(self):
        with pytest.raises(AnalysisError):
            write_csv([])


class TestAsciiChart:
    def test_chart_contains_series_markers_and_labels(self):
        chart = ascii_chart(
            {"err": [(1, 30.0), (10, 3.0), (100, 0.3)]},
            x_log=True,
            y_log=True,
            x_label="gamma",
            y_label="% err",
            title="Figure 3",
        )
        assert "Figure 3" in chart
        assert "gamma" in chart
        assert "legend: * err" in chart

    def test_multiple_series_get_distinct_markers(self):
        chart = ascii_chart({"a": [(1, 1), (2, 2)], "b": [(1, 2), (2, 1)]})
        assert "* a" in chart and "o b" in chart

    def test_log_axis_rejects_non_positive(self):
        with pytest.raises(AnalysisError):
            ascii_chart({"a": [(0, 1)]}, x_log=True)

    def test_empty_series_rejected(self):
        with pytest.raises(AnalysisError):
            ascii_chart({})


class TestSensitivity:
    def test_perturb_rates_changes_rates_only(self, example1_network):
        perturbed = perturb_rates(example1_network, 0.3, seed=1)
        assert perturbed.size == example1_network.size
        assert perturbed.initial_state == example1_network.initial_state
        changed = [
            perturbed.reaction(i).rate != example1_network.reaction(i).rate
            for i in range(perturbed.size)
        ]
        assert any(changed)

    def test_perturb_rates_category_filter(self, example1_network):
        perturbed = perturb_rates(example1_network, 0.5, seed=2, categories=["working"])
        for i in range(perturbed.size):
            original = example1_network.reaction(i)
            if original.category != "working":
                assert perturbed.reaction(i).rate == original.rate

    def test_perturb_rates_zero_sigma_identity(self, example1_network):
        perturbed = perturb_rates(example1_network, 0.0, seed=3)
        for i in range(perturbed.size):
            assert perturbed.reaction(i).rate == pytest.approx(
                example1_network.reaction(i).rate
            )

    def test_perturb_quantities(self, example1_network):
        perturbed = perturb_initial_quantities(example1_network, 0.3, seed=4)
        originals = example1_network.initial_state.to_dict()
        news = perturbed.initial_state.to_dict()
        assert set(news) <= set(originals) | set(news)
        assert any(news.get(k, 0) != v for k, v in originals.items())

    def test_perturb_quantities_species_filter(self, example1_network):
        perturbed = perturb_initial_quantities(
            example1_network, 0.5, seed=5, species=["e_1"]
        )
        assert perturbed.initial_count("e_2") == example1_network.initial_count("e_2")

    def test_negative_sigma_rejected(self, example1_network):
        with pytest.raises(AnalysisError):
            perturb_rates(example1_network, -0.1)
        with pytest.raises(AnalysisError):
            perturb_initial_quantities(example1_network, -0.1)
