"""Tests for the pluggable simulation-kernel backend layer.

Covers the kernel building blocks (buffers, random blocks, stopping plans,
dense network views), backend resolution policy (auto preference, python
fallback, explicit-request errors, numba auto-fallback), run mechanics of
every kernel on every available backend, bit-level determinism (same seed,
worker invariance, numpy↔numba identity when numba is installed), and the
satellite fixes around ``SimulationOptions`` (validation + strict override
merging).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Experiment
from repro.crn import parse_network
from repro.errors import SimulationError
from repro.sim import (
    CategoryFiringCondition,
    EnsembleRunner,
    FiringCountCondition,
    OutcomeThresholds,
    SimulationOptions,
    SpeciesThreshold,
    StopReason,
    make_simulator,
    merge_options,
    numba_available,
)
from repro.sim.events import AllCondition, AnyCondition, PredicateCondition
from repro.sim.kernels import (
    RandomBlocks,
    TrajectoryBuffers,
    available_backends,
    compile_stopping_plan,
)
from repro.sim.propensity import CompiledNetwork
from repro.sim.registry import registry
from repro.sim.trajectory import FiringRecord

KERNEL_BACKENDS = ["numpy"] + (["numba"] if numba_available() else [])
KERNEL_ENGINES = {
    "numpy": ["direct", "first-reaction", "next-reaction"],
    "numba": ["direct", "first-reaction", "next-reaction"],
}
ENGINE_BACKEND_CASES = [
    (engine, backend)
    for backend in KERNEL_BACKENDS
    for engine in KERNEL_ENGINES[backend]
]


def _death(count: int = 20):
    return parse_network(f"x ->{{1}} 0\ninit: x = {count}")


def _birth():
    return parse_network("src ->{1} src + x\ninit: src = 1")


# ---------------------------------------------------------------------------
# run mechanics on every kernel × backend
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine,backend", ENGINE_BACKEND_CASES)
class TestKernelMechanics:
    def test_pure_death_exhausts(self, engine, backend):
        trajectory = make_simulator(_death(), engine=engine, seed=1).run(backend=backend)
        assert trajectory.stop_reason == StopReason.EXHAUSTED
        assert trajectory.final_count("x") == 0
        assert trajectory.n_firings == 20
        assert np.all(np.diff(trajectory.times) >= 0)
        assert trajectory.final_time == pytest.approx(trajectory.times[-1])

    def test_max_steps_stop(self, engine, backend):
        trajectory = make_simulator(_birth(), engine=engine, seed=3).run(
            max_steps=50, backend=backend
        )
        assert trajectory.stop_reason == StopReason.MAX_STEPS
        assert trajectory.n_firings == 50

    def test_max_time_stop(self, engine, backend):
        trajectory = make_simulator(_birth(), engine=engine, seed=4).run(
            max_time=5.0, backend=backend
        )
        assert trajectory.stop_reason == StopReason.MAX_TIME
        assert trajectory.final_time == pytest.approx(5.0)
        assert np.all(trajectory.times <= 5.0)

    def test_condition_stop_with_detail(self, engine, backend):
        trajectory = make_simulator(_birth(), engine=engine, seed=5).run(
            stopping=SpeciesThreshold("x", 7), backend=backend
        )
        assert trajectory.stop_reason == StopReason.CONDITION
        assert trajectory.stop_detail == "x>=7"
        assert trajectory.final_count("x") == 7

    def test_condition_already_true_at_start(self, engine, backend):
        trajectory = make_simulator(_death(5), engine=engine, seed=6).run(
            stopping=SpeciesThreshold("x", 5), backend=backend
        )
        assert trajectory.stop_reason == StopReason.CONDITION
        assert trajectory.n_firings == 0

    def test_record_states_snapshots(self, engine, backend):
        trajectory = make_simulator(_death(10), engine=engine, seed=9).run(
            record_states=True, backend=backend
        )
        series = trajectory.species_series("x")
        assert len(series) == trajectory.firing_counts.sum()
        assert series[0] == 9 and series[-1] == 0

    def test_snapshot_stride(self, engine, backend):
        trajectory = make_simulator(_death(10), engine=engine, seed=9).run(
            record_states=True, snapshot_stride=3, backend=backend
        )
        assert len(trajectory.snapshot_times) == 3  # firings 3, 6, 9

    def test_record_firings_off_keeps_totals(self, engine, backend):
        trajectory = make_simulator(_death(10), engine=engine, seed=10).run(
            record_firings=False, backend=backend
        )
        assert trajectory.n_firings == 0
        assert trajectory.firing_counts.sum() == 10

    def test_initial_state_override(self, engine, backend):
        trajectory = make_simulator(_death(5), engine=engine, seed=7).run(
            initial_state={"x": 2}, backend=backend
        )
        assert trajectory.firing_counts.sum() == 2

    def test_same_seed_bit_identical(self, engine, backend):
        first = make_simulator(_death(15), engine=engine, seed=42).run(backend=backend)
        second = make_simulator(_death(15), engine=engine, seed=42).run(backend=backend)
        np.testing.assert_array_equal(first.times, second.times)
        np.testing.assert_array_equal(first.reaction_indices, second.reaction_indices)
        assert first.final_time == second.final_time

    def test_buffer_growth_on_long_runs(self, engine, backend):
        # > default event capacity (1024) forces at least two buffer doublings
        # and several random-block refills.
        trajectory = make_simulator(_birth(), engine=engine, seed=3).run(
            max_steps=5000, backend=backend
        )
        assert trajectory.n_firings == 5000
        assert np.all(np.diff(trajectory.times) >= 0)

    def test_category_condition_labels(self, engine, backend):
        parsed = parse_network(
            """
            init: a = 50
            a ->{1} w1
            a ->{1} w2
            """
        )
        from repro.crn import ReactionNetwork

        net = ReactionNetwork(
            reactions=[
                reaction.with_name(f"cat[{index}]", category="cat")
                for index, reaction in enumerate(parsed.reactions)
            ],
            initial_state=parsed.initial_state,
        )
        trajectory = make_simulator(net, engine=engine, seed=11).run(
            stopping=CategoryFiringCondition("cat", 5), backend=backend
        )
        assert trajectory.stop_reason == StopReason.CONDITION
        assert trajectory.stop_detail in {"cat[0]", "cat[1]"}


# ---------------------------------------------------------------------------
# statistical sanity of the kernel paths
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine,backend", ENGINE_BACKEND_CASES)
def test_race_probabilities_on_kernel_path(engine, backend):
    net = parse_network(
        """
        init: e1 = 30
        init: e2 = 40
        init: e3 = 30
        e1 ->{1} d1
        e2 ->{1} d2
        e3 ->{1} d3
        """
    )
    simulator = make_simulator(net, engine=engine, seed=123)
    condition = FiringCountCondition([0, 1, 2], 1)
    wins = {"d1": 0, "d2": 0, "d3": 0}
    n = 1200
    for _ in range(n):
        trajectory = simulator.run(
            stopping=condition, record_firings=False, backend=backend
        )
        for name in wins:
            if trajectory.final_count(name) == 1:
                wins[name] += 1
    assert wins["d1"] / n == pytest.approx(0.3, abs=0.06)
    assert wins["d2"] / n == pytest.approx(0.4, abs=0.06)
    assert wins["d3"] / n == pytest.approx(0.3, abs=0.06)


# ---------------------------------------------------------------------------
# backend resolution policy
# ---------------------------------------------------------------------------


class TestBackendResolution:
    def test_available_backends(self):
        names = available_backends()
        assert "python" in names and "numpy" in names
        assert ("numba" in names) == numba_available()

    def test_registry_records_backends(self):
        assert registry.get("direct").backends == ("python", "numpy", "numba")
        assert registry.get("next-reaction").backends == ("python", "numpy", "numba")
        assert registry.get("batch-direct").backends == ("numpy", "numba")
        assert registry.get("ode").backends == ()
        assert registry.get("fsp").backends == ()

    def test_unknown_backend_rejected_at_options(self):
        with pytest.raises(SimulationError, match="unknown kernel backend"):
            SimulationOptions(backend="cuda")

    def test_engine_without_kernel_rejects_explicit_backend(self):
        simulator = make_simulator(_death(), engine="tau-leaping", seed=1)
        with pytest.raises(SimulationError, match="does not support backend"):
            simulator.run(backend="numpy")

    def test_batch_engine_rejects_python_backend(self):
        with pytest.raises(SimulationError, match="does not support backend"):
            EnsembleRunner(
                _death(),
                engine="batch-direct",
                options=SimulationOptions(record_firings=False, backend="python"),
            )

    def test_uncompilable_condition_falls_back_on_auto(self):
        condition = PredicateCondition(lambda t, state: "done" if state["x"] <= 15 else None)
        trajectory = make_simulator(_death(), engine="direct", seed=2).run(
            stopping=condition
        )
        assert trajectory.stop_reason == StopReason.CONDITION
        assert trajectory.stop_detail == "done"

    def test_uncompilable_condition_rejected_on_explicit_kernel_backend(self):
        condition = PredicateCondition(lambda t, state: None)
        simulator = make_simulator(_death(), engine="direct", seed=2)
        with pytest.raises(SimulationError, match="stopping condition"):
            simulator.run(stopping=condition, backend="numpy")

    def test_next_reaction_declares_numba(self):
        # The array-heap port gave next-reaction a numba kernel; requesting it
        # without numba installed falls back to numpy (identical results)
        # instead of being rejected.
        simulator = make_simulator(_death(15), engine="next-reaction", seed=1)
        if numba_available():
            trajectory = simulator.run(backend="numba")
        else:
            with pytest.warns(RuntimeWarning, match="falling back"):
                trajectory = simulator.run(backend="numba")
        reference = make_simulator(_death(15), engine="next-reaction", seed=1).run(
            backend="numpy"
        )
        np.testing.assert_array_equal(trajectory.times, reference.times)
        np.testing.assert_array_equal(
            trajectory.reaction_indices, reference.reaction_indices
        )

    @pytest.mark.skipif(numba_available(), reason="numba installed: no fallback")
    def test_numba_request_warns_and_falls_back_to_numpy(self):
        simulator = make_simulator(_death(15), engine="direct", seed=21)
        with pytest.warns(RuntimeWarning, match="falling back"):
            fell_back = simulator.run(backend="numba")
        reference = make_simulator(_death(15), engine="direct", seed=21).run(
            backend="numpy"
        )
        np.testing.assert_array_equal(fell_back.times, reference.times)

    def test_experiment_rejects_backend_for_distribution_engines(self):
        experiment = Experiment.from_network(_death())
        with pytest.raises(Exception, match="no kernel backends"):
            experiment.simulate(engine="fsp", backend="numpy")

    def test_run_once_validates_backend(self):
        experiment = Experiment.from_network(_death())
        with pytest.raises(SimulationError, match="does not support backend"):
            experiment.run_once(engine="ode", backend="numpy")


# ---------------------------------------------------------------------------
# stopping-plan compilation
# ---------------------------------------------------------------------------


class TestStoppingPlan:
    @pytest.fixture()
    def compiled(self):
        from repro.crn import ReactionNetwork

        parsed = parse_network(
            """
            init: a = 10
            init: b = 5
            a ->{1} b
            b ->{1} 0
            """
        )
        categories = ("work", "decay")
        network = ReactionNetwork(
            reactions=[
                reaction.with_name(f"{categories[i]}[{i}]", category=categories[i])
                for i, reaction in enumerate(parsed.reactions)
            ],
            initial_state=parsed.initial_state,
        )
        return CompiledNetwork.compile(network)

    def test_none_compiles_to_empty_plan(self, compiled):
        plan = compile_stopping_plan(None, compiled)
        assert plan is not None and plan.n_clauses == 0

    def test_species_threshold(self, compiled):
        plan = compile_stopping_plan(SpeciesThreshold("b", 8), compiled)
        assert plan.n_clauses == 1
        assert plan.labels == ("b>=8",)
        assert plan.py_clauses()[0][0] == 0  # KIND_COUNT_GE

    def test_species_threshold_le(self, compiled):
        plan = compile_stopping_plan(SpeciesThreshold("a", 2, comparison="<="), compiled)
        assert plan.py_clauses()[0][0] == 1  # KIND_COUNT_LE

    def test_outcome_thresholds_preserve_order(self, compiled):
        condition = OutcomeThresholds({"hi": ("b", 9), "lo": ("a", 1)})
        condition.reset(compiled)
        plan = compile_stopping_plan(condition, compiled)
        assert plan.labels == ("hi", "lo")

    def test_firing_count_members(self, compiled):
        plan = compile_stopping_plan(FiringCountCondition([0, 1], 4, label="n"), compiled)
        row = plan.py_clauses()[0]
        assert row[0] == 2 and row[2] == 4 and row[3] == (0, 1)

    def test_category_expands_to_member_clauses(self, compiled):
        condition = CategoryFiringCondition("work", 3)
        condition.reset(compiled)
        plan = compile_stopping_plan(condition, compiled)
        assert plan.n_clauses == 1
        assert plan.py_clauses()[0][0] == 3  # KIND_FIRING_ONE

    def test_any_condition_concatenates_in_child_order(self, compiled):
        plan = compile_stopping_plan(
            AnyCondition([SpeciesThreshold("b", 9), FiringCountCondition([0], 2, label="f")]),
            compiled,
        )
        assert plan.labels == ("b>=9", "f")

    def test_uncompilable_conditions_return_none(self, compiled):
        assert compile_stopping_plan(PredicateCondition(lambda t, s: None), compiled) is None
        assert (
            compile_stopping_plan(
                AllCondition([SpeciesThreshold("b", 9), SpeciesThreshold("a", 1)]),
                compiled,
            )
            is None
        )
        assert (
            compile_stopping_plan(
                AnyCondition([SpeciesThreshold("b", 9), PredicateCondition(lambda t, s: None)]),
                compiled,
            )
            is None
        )


# ---------------------------------------------------------------------------
# buffers and random blocks
# ---------------------------------------------------------------------------


class TestTrajectoryBuffers:
    def test_growth_preserves_prefix(self):
        buffers = TrajectoryBuffers(n_species=2, event_capacity=4, snapshot_capacity=2)
        for i in range(4):
            buffers.times[i] = float(i)
            buffers.reactions[i] = i
        buffers.n_events = 4
        buffers.grow_events()
        assert buffers.event_capacity == 8
        times, reactions = buffers.finalize_events()
        np.testing.assert_array_equal(times, [0.0, 1.0, 2.0, 3.0])
        np.testing.assert_array_equal(reactions, [0, 1, 2, 3])

    def test_snapshot_growth_and_reset(self):
        buffers = TrajectoryBuffers(n_species=3, snapshot_capacity=1)
        buffers.snapshot_times[0] = 1.5
        buffers.snapshots[0] = [1, 2, 3]
        buffers.n_snapshots = 1
        buffers.grow_snapshots()
        assert buffers.snapshot_capacity == 2
        times, snaps = buffers.finalize_snapshots()
        np.testing.assert_array_equal(snaps, [[1, 2, 3]])
        buffers.reset()
        assert buffers.n_events == 0 and buffers.n_snapshots == 0
        assert buffers.snapshot_capacity == 2  # capacity survives reset

    def test_finalize_returns_copies(self):
        buffers = TrajectoryBuffers(n_species=1)
        buffers.times[0] = 1.0
        buffers.reactions[0] = 7
        buffers.n_events = 1
        times, _ = buffers.finalize_events()
        buffers.times[0] = 99.0
        assert times[0] == 1.0


class TestRandomBlocks:
    def test_refill_preserves_the_stream(self):
        # Consuming through refills must yield exactly the generator's output
        # stream — the bit-identity contract between backends.
        blocks = RandomBlocks(np.random.default_rng(5), initial=8)
        consumed = list(blocks.exponential[:5])
        blocks.refill_exponential(5)  # 3 values left -> compacted to front
        consumed += list(blocks.exponential)

        reference_rng = np.random.default_rng(5)
        reference = list(reference_rng.standard_exponential(8))
        reference_rng.random(8)  # the uniform block drawn at construction
        reference += list(reference_rng.standard_exponential(len(blocks.exponential) - 3))
        np.testing.assert_array_equal(consumed, reference)

    def test_blocks_grow_up_to_cap(self):
        blocks = RandomBlocks(np.random.default_rng(0), initial=4, maximum=16)
        assert len(blocks.exponential) == 4
        blocks.refill_exponential(4)
        assert len(blocks.exponential) == 8
        blocks.refill_exponential(8)
        blocks.refill_exponential(16)
        assert len(blocks.exponential) == 16  # capped

    def test_invalid_initial_rejected(self):
        with pytest.raises(ValueError):
            RandomBlocks(np.random.default_rng(0), initial=0)


# ---------------------------------------------------------------------------
# dense network views / propensity parity
# ---------------------------------------------------------------------------


class TestKernelNetworkParity:
    @pytest.fixture()
    def compiled(self):
        return CompiledNetwork.compile(
            parse_network(
                """
                init: a = 30
                init: b = 12
                init: c = 4
                a + b ->{2.5} c
                2 a ->{0.5} b
                b ->{3} 0
                3 c ->{0.25} a
                """
            )
        )

    def test_propensities_match_compiled(self, compiled):
        # The vectorized path evaluates the combinatorial factor in float
        # (falling-factorial product) rather than exact integers, so allow
        # ulp-level differences for molecularity ≥ 3.
        knet = compiled.kernel_network()
        rng = np.random.default_rng(1)
        for _ in range(25):
            counts = rng.integers(0, 40, size=compiled.n_species).astype(np.int64)
            expected = compiled.all_propensities(counts)
            np.testing.assert_allclose(knet.propensities(counts), expected, rtol=1e-12)

    def test_specs_match_generic_path(self, compiled):
        knet = compiled.kernel_network()
        views = knet.py_views()
        rng = np.random.default_rng(2)
        for _ in range(25):
            counts = [int(c) for c in rng.integers(0, 40, size=compiled.n_species)]
            for j, spec in enumerate(views["specs"]):
                expected = compiled.propensity(j, counts)
                if spec[0] == 1:
                    value = spec[2] * counts[spec[1]]
                elif spec[0] == 2:
                    c = counts[spec[1]]
                    value = spec[2] * (c * (c - 1) // 2)
                elif spec[0] == 3:
                    value = spec[3] * (counts[spec[1]] * counts[spec[2]])
                else:
                    continue
                assert value == expected

    def test_delta_matrix_matches_apply(self, compiled):
        knet = compiled.kernel_network()
        for j in range(compiled.n_reactions):
            counts = np.full(compiled.n_species, 10, dtype=np.int64)
            compiled.apply(j, counts)
            np.testing.assert_array_equal(
                counts, np.full(compiled.n_species, 10, dtype=np.int64) + knet.delta_matrix[j]
            )

    def test_scan_order_is_a_permutation_by_descending_rate(self, compiled):
        knet = compiled.kernel_network()
        order = list(knet.scan_order)
        assert sorted(order) == list(range(compiled.n_reactions))
        rates = [float(knet.rates[j]) for j in order]
        assert rates == sorted(rates, reverse=True)


# ---------------------------------------------------------------------------
# determinism across backends and workers
# ---------------------------------------------------------------------------


class TestKernelDeterminism:
    @pytest.fixture(scope="class")
    def race_experiment(self):
        network = parse_network(
            """
            init: e1 = 30
            init: e2 = 40
            init: e3 = 30
            e1 ->{1} d1
            e2 ->{1} d2
            e3 ->{1} d3
            """
        )
        stopping = OutcomeThresholds({"1": ("d1", 3), "2": ("d2", 3), "3": ("d3", 3)})
        return Experiment.from_network(network, stopping=stopping)

    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_worker_invariance_per_backend(self, race_experiment, backend):
        single = race_experiment.simulate(
            trials=120, engine="direct", seed=5, workers=1, chunk_size=40, backend=backend
        )
        sharded = race_experiment.simulate(
            trials=120, engine="direct", seed=5, workers=2, chunk_size=40, backend=backend
        )
        assert single.ensemble.outcome_counts == sharded.ensemble.outcome_counts
        np.testing.assert_array_equal(
            single.ensemble.final_counts, sharded.ensemble.final_counts
        )
        np.testing.assert_array_equal(
            single.ensemble.final_times, sharded.ensemble.final_times
        )

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    @pytest.mark.parametrize("engine", ["direct", "first-reaction"])
    def test_numpy_and_numba_are_bit_identical(self, race_experiment, engine):
        numpy_run = race_experiment.simulate(
            trials=150, engine=engine, seed=11, backend="numpy"
        )
        numba_run = race_experiment.simulate(
            trials=150, engine=engine, seed=11, backend="numba"
        )
        assert numpy_run.ensemble.outcome_counts == numba_run.ensemble.outcome_counts
        np.testing.assert_array_equal(
            numpy_run.ensemble.final_counts, numba_run.ensemble.final_counts
        )
        np.testing.assert_array_equal(
            numpy_run.ensemble.final_times, numba_run.ensemble.final_times
        )

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_numpy_and_numba_trajectories_bit_identical(self):
        net = _birth()
        numpy_run = make_simulator(net, engine="direct", seed=33).run(
            max_steps=3000, backend="numpy"
        )
        numba_run = make_simulator(net, engine="direct", seed=33).run(
            max_steps=3000, backend="numba"
        )
        np.testing.assert_array_equal(numpy_run.times, numba_run.times)
        np.testing.assert_array_equal(
            numpy_run.reaction_indices, numba_run.reaction_indices
        )

    def test_backend_recorded_on_result(self, race_experiment):
        result = race_experiment.simulate(trials=30, seed=1, backend="numpy")
        assert result.backend == "numpy"
        from repro.api.results import RunResult

        assert RunResult.from_json(result.to_json()).backend == "numpy"


# ---------------------------------------------------------------------------
# options merging + validation (satellite fixes)
# ---------------------------------------------------------------------------


class TestOptionsMergeAndValidation:
    def test_merge_applies_overrides(self):
        merged = merge_options(SimulationOptions(max_steps=10), {"max_time": 2.0})
        assert merged.max_steps == 10 and merged.max_time == 2.0

    def test_merge_rejects_unknown_keys(self):
        with pytest.raises(SimulationError, match="unknown simulation option"):
            merge_options(SimulationOptions(), {"max_stpes": 10})

    def test_run_rejects_unknown_option_overrides(self):
        simulator = make_simulator(_death(), engine="direct", seed=1)
        with pytest.raises(SimulationError, match="unknown simulation option"):
            simulator.run(max_stpes=50)

    def test_tau_leaping_rejects_unknown_overrides(self):
        simulator = make_simulator(_death(), engine="tau-leaping", seed=1)
        with pytest.raises(SimulationError, match="unknown simulation option"):
            simulator.run(recordfirings=False)

    def test_batch_rejects_unknown_overrides(self):
        engine = make_simulator(_death(), engine="batch-direct", seed=1)
        with pytest.raises(SimulationError, match="unknown simulation option"):
            engine.run_batch(4, record_stats=True)

    def test_experiment_configure_rejects_unknown_fields(self):
        experiment = Experiment.from_network(_death())
        with pytest.raises(SimulationError, match="unknown simulation option"):
            experiment.configure(max_stpes=50)

    def test_merge_revalidates(self):
        with pytest.raises(SimulationError, match="max_time must be positive"):
            merge_options(SimulationOptions(), {"max_time": -1.0})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_time": 0.0},
            {"max_time": -3.0},
            {"max_time": float("nan")},
            {"max_steps": 0},
            {"max_steps": -5},
            {"max_steps": 2.5},
            {"max_steps": True},
            {"snapshot_stride": 0},
            {"snapshot_stride": -1},
            {"snapshot_stride": 1.5},
            {"backend": "gpu"},
        ],
    )
    def test_invalid_options_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            SimulationOptions(**kwargs)


# ---------------------------------------------------------------------------
# columnar trajectory views
# ---------------------------------------------------------------------------


class TestFiringLogViews:
    def test_records_view_columns(self):
        trajectory = make_simulator(_death(5), engine="direct", seed=4).run(backend="numpy")
        log = trajectory.firings
        assert len(log) == trajectory.n_firings == 5
        first = log[0]
        assert isinstance(first, FiringRecord)
        assert first.time == trajectory.times[0]
        assert first.reaction_index == trajectory.reaction_indices[0]
        assert log[-1].time == trajectory.times[-1]
        assert [record.reaction_index for record in log] == list(
            trajectory.reaction_indices
        )
        sliced = log[1:3]
        assert len(sliced) == 2 and sliced[0].time == trajectory.times[1]
        assert trajectory.firing(2) == log[2]


# ---------------------------------------------------------------------------
# regressions from review: large networks and condition subclasses
# ---------------------------------------------------------------------------


class TestLargeNetworkRefills:
    def test_refill_honours_need_beyond_doubling_cap(self):
        blocks = RandomBlocks(np.random.default_rng(0), initial=4, maximum=8)
        block = blocks.refill_exponential(0, need=100)
        assert len(block) >= 100 + 4  # tail preserved too

    @pytest.mark.parametrize("engine", ["first-reaction", "next-reaction"])
    def test_kernels_survive_networks_wider_than_the_block_cap(self, engine):
        # One tentative draw per reaction per event: with 9000 positive
        # propensities a single event needs more exponentials than the
        # pre-fix refill could ever provide (doubling capped at 16384, one
        # refill per event).
        from repro.crn import Reaction, ReactionNetwork

        n = 9000
        net = ReactionNetwork(
            reactions=[Reaction({f"a{i}": 1}, {}, rate=1.0) for i in range(n)],
            initial_state={f"a{i}": 1 for i in range(n)},
        )
        trajectory = make_simulator(net, engine=engine, seed=1).run(
            max_steps=3, backend="numpy"
        )
        assert trajectory.firing_counts.sum() == 3


class _StickyThreshold(SpeciesThreshold):
    """A subclass whose check() requires the threshold on 2 consecutive events."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._streak = 0

    def reset(self, compiled):
        super().reset(compiled)
        self._streak = 0

    def check(self, time, counts, compiled, firing_counts):
        hit = super().check(time, counts, compiled, firing_counts)
        self._streak = self._streak + 1 if hit else 0
        return self.label if self._streak >= 2 else None


class TestConditionSubclassesFallBack:
    def test_subclass_is_not_compiled_to_base_semantics(self):
        compiled = CompiledNetwork.compile(_death(10))
        assert compile_stopping_plan(_StickyThreshold("x", 7, comparison="<="), compiled) is None

    def test_subclass_runs_identically_on_auto_and_python(self):
        # auto must route the overridden check() to the template, not compile
        # the base class's one-shot threshold.
        auto = make_simulator(_death(10), engine="direct", seed=2).run(
            stopping=_StickyThreshold("x", 7, comparison="<=")
        )
        template = make_simulator(_death(10), engine="direct", seed=2).run(
            stopping=_StickyThreshold("x", 7, comparison="<="), backend="python"
        )
        assert auto.stop_reason == template.stop_reason == StopReason.CONDITION
        assert auto.firing_counts.sum() == template.firing_counts.sum() == 4

    def test_subclass_rejected_on_explicit_kernel_backend(self):
        simulator = make_simulator(_death(10), engine="direct", seed=2)
        with pytest.raises(SimulationError, match="stopping condition"):
            simulator.run(
                stopping=_StickyThreshold("x", 7, comparison="<="), backend="numpy"
            )
