"""Tests for the reaction text DSL (repro.crn.parser)."""

from __future__ import annotations

import pytest

from repro.crn import (
    Reaction,
    Species,
    format_network,
    format_reaction,
    parse_network,
    parse_reaction,
)
from repro.errors import ParseError


class TestParseReaction:
    def test_simple(self):
        r = parse_reaction("a + b ->{10} 2 c")
        assert r == Reaction({"a": 1, "b": 1}, {"c": 2}, rate=10.0)

    def test_scientific_rate(self):
        assert parse_reaction("e1 ->{1e-9} d1").rate == pytest.approx(1e-9)

    def test_coefficient_attached_to_name(self):
        r = parse_reaction("2e3 ->{1} d")
        assert r.reactants == {Species("e3"): 2}

    def test_empty_product_zero(self):
        assert parse_reaction("d1 + d2 ->{1e6} 0").products == {}

    def test_empty_product_symbol(self):
        assert parse_reaction("d1 ->{1} ∅").products == {}

    def test_empty_reactant_source(self):
        r = parse_reaction("0 ->{2} x")
        assert r.reactants == {} and r.products == {Species("x"): 1}

    def test_repeated_species_accumulate(self):
        r = parse_reaction("x + x ->{1} y")
        assert r.reactants == {Species("x"): 2}

    def test_comment_stripped(self):
        assert parse_reaction("a ->{1} b  # a comment").products == {Species("b"): 1}

    def test_name_and_category_attached(self):
        r = parse_reaction("a ->{1} b", name="n", category="c")
        assert (r.name, r.category) == ("n", "c")

    def test_primes_supported(self):
        r = parse_reaction("x' ->{1} x")
        assert Species("x'") in r.reactants

    @pytest.mark.parametrize(
        "bad",
        [
            "a -> b",                 # missing rate braces
            "a ->{} b",               # empty rate
            "a ->{fast} b",           # non-numeric rate
            "->{1} b",                # empty left side
            "a ->{1}",                # empty right side
            "a ->{0} b",              # zero rate
            "a ->{1} -2 b",           # negative coefficient
            "",                        # blank
        ],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(ParseError):
            parse_reaction(bad)


class TestParseNetwork:
    def test_network_with_inits_and_comments(self):
        net = parse_network(
            """
            # paper example
            init: e1 = 30
            init: e2 = 40
            e1 ->{1} d1
            e2 ->{1} d2   # second
            """
        )
        assert net.size == 2
        assert net.initial_count("e1") == 30
        assert net.initial_count("e2") == 40

    def test_initial_state_argument_overrides(self):
        net = parse_network("init: x = 1\nx ->{1} y", initial_state={"x": 9})
        assert net.initial_count("x") == 9

    def test_error_reports_line_number(self):
        with pytest.raises(ParseError, match="line 3"):
            parse_network("x ->{1} y\n\nbroken line\n")

    def test_accepts_iterable_of_lines(self):
        net = parse_network(["a ->{1} b", "b ->{2} c"])
        assert net.size == 2


class TestRoundTrip:
    def test_reaction_roundtrip(self):
        original = Reaction({"a": 2, "b": 1}, {}, rate=1e3)
        assert parse_reaction(format_reaction(original)) == original

    def test_network_roundtrip(self, race_network):
        text = format_network(race_network)
        reparsed = parse_network(text)
        assert reparsed.size == race_network.size
        assert reparsed.initial_state == race_network.initial_state
        assert list(reparsed.reactions) == list(race_network.reactions)
