"""Tests for the polynomial composition module (Section 2.2.2 extension)."""

from __future__ import annotations

import pytest

from repro.core import settle_module
from repro.core.modules import polynomial_module
from repro.errors import SpecificationError


class TestPolynomialModule:
    @pytest.mark.parametrize(
        "coefficients, x, expected",
        [
            ([0, 3], 5, 15),            # 3·X
            ([2, 1], 6, 8),             # 2 + X
            ([1, 0, 2], 3, 19),         # 1 + 2·X²
            ([0, 1, 1], 4, 20),         # X + X²
            ([0, 0, 0, 1], 3, 27),      # X³
            ([2, 1, 1], 4, 22),         # 2 + X + X²
        ],
    )
    def test_small_polynomials(self, coefficients, x, expected):
        module = polynomial_module(coefficients)
        result = settle_module(module, {"x": x}, seed=4)
        assert result.output("y") == expected

    def test_zero_input(self):
        module = polynomial_module([3, 1, 1])
        result = settle_module(module, {"x": 0}, seed=5)
        assert result.output("y") == 3

    def test_expected_function(self):
        module = polynomial_module([1, 2, 3])
        assert module.expected_outputs({"x": 2})["y"] == 1 + 4 + 12

    def test_description_lists_terms(self):
        module = polynomial_module([1, 0, 2])
        assert "X^2" in module.description

    @pytest.mark.parametrize(
        "coefficients",
        [[], [-1, 2], [0], [5], [0, 0, 0]],
    )
    def test_validation(self, coefficients):
        with pytest.raises(SpecificationError):
            polynomial_module(coefficients)

    def test_same_input_output_rejected(self):
        with pytest.raises(SpecificationError):
            polynomial_module([0, 1], input_name="x", output_name="x")


class TestMixedRateScaleRegression:
    def test_slow_reaction_statistics_with_extreme_rate_spread(self):
        """Regression test for propensity-total drift in the direct method.

        With reaction rates spanning 24 orders of magnitude, the fast phase
        must not corrupt the statistics of the slow phase: after the burst
        converts ``a`` to ``b``, the two slow reactions drain ``b`` to ``win``
        or ``lose`` with probability 3:1 regardless of the earlier 1e18-rate
        firings.
        """
        from repro.crn import parse_network
        from repro.sim import OutcomeThresholds, run_ensemble

        network = parse_network(
            """
            init: a = 20
            a ->{1e18} b
            b ->{3e-6} win
            b ->{1e-6} lose
            """
        )
        result = run_ensemble(
            network,
            600,
            stopping=OutcomeThresholds({"win": ("win", 1), "lose": ("lose", 1)}),
            seed=99,
        )
        assert result.outcome_distribution()["win"] == pytest.approx(0.75, abs=0.06)
