"""Tests for the ``repro serve`` HTTP service and its client."""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

import repro
from repro.api import Experiment
from repro.client import ServiceClient
from repro.errors import ServiceError
from repro.service import ResultService
from repro.sim.registry import registry
from repro.store import Campaign, CampaignRunner


@pytest.fixture
def experiment() -> Experiment:
    return Experiment.from_distribution({"1": 0.3, "2": 0.7}, gamma=100)


@pytest.fixture
def service(tmp_path):
    service = ResultService(tmp_path / "store", port=0, quiet=True).start()
    yield service
    service.stop()


@pytest.fixture
def client(service) -> ServiceClient:
    return ServiceClient(service.url, timeout=60.0)


class TestEndpoints:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["version"] == repro.__version__
        assert health["artifacts"] == 0

    def test_engines_matches_registry(self, client):
        rows = client.engines()
        assert [row["engine"] for row in rows] == registry.names()

    def test_unknown_routes_404(self, service):
        client = ServiceClient(service.url)
        for path in ("/nope", "/results/" + "ab" * 32, "/campaigns/" + "de" * 8):
            with pytest.raises(ServiceError, match="404"):
                client._request(path)

    def test_post_requires_experiment_payload(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError, match="serialized experiment"):
            client._request("/simulate", body={"experiment": {"bogus": True}})

    def test_callable_refs_rejected_over_the_wire(self, service, client, experiment):
        # A wire payload naming an importable callable must not be resolved
        # server-side (it would execute arbitrary installed code).
        from repro.store import experiment_to_payload

        payload = experiment_to_payload(experiment, trials=10, engine="direct", seed=1)
        payload["classifier"] = {"type": "callable", "ref": "os:system"}
        with pytest.raises(ServiceError, match="rejected"):
            client._request("/simulate", body={"experiment": payload})

    def test_malformed_json_is_400(self, service):
        request = urllib.request.Request(
            service.url + "/simulate",
            data=b"this is not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_unreachable_service(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=2.0)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()

    def test_busy_port_raises_clean_service_error(self, service, tmp_path):
        # Binding a port already in use must surface as a ReproError (the CLI
        # prints it as a one-line `error: ...`), not a raw OSError traceback.
        with pytest.raises(ServiceError, match="cannot bind"):
            ResultService(tmp_path / "other-store", port=service.port)


class TestSimulateRoundTrip:
    def test_miss_then_hit_bit_identical(self, client, experiment):
        first = client.simulate_entry(
            experiment, trials=60, engine="batch-direct", seed=3
        )
        second = client.simulate_entry(
            experiment, trials=60, engine="batch-direct", seed=3
        )
        assert not first.cached and second.cached
        assert first.key == second.key
        assert first.result.to_json() == second.result.to_json()
        # raw artifact payloads are byte-identical too
        assert json.dumps(first.artifact["payload"]) == json.dumps(
            second.artifact["payload"]
        )

    def test_hit_miss_counters(self, client, experiment):
        client.simulate(experiment, trials=30, seed=1)
        client.simulate(experiment, trials=30, seed=1)
        health = client.healthz()
        assert health["misses"] == 1 and health["hits"] == 1

    def test_get_result_by_key(self, client, experiment):
        entry = client.simulate_entry(experiment, trials=30, seed=5)
        fetched = client.result(entry.key)
        assert fetched.to_json() == entry.result.to_json()

    def test_served_result_matches_local_store_run(self, service, client, experiment):
        served = client.simulate(experiment, trials=50, seed=8, engine="direct")
        local = experiment.simulate(
            trials=50, seed=8, engine="direct", store=service.store
        )
        assert local.to_json() == served.to_json()
        assert client.healthz()["artifacts"] == 1  # one shared cache entry

    def test_exact_engine_served(self, client, experiment):
        entry = client.simulate_entry(experiment, trials=100, engine="fsp")
        assert entry.result.exact is not None
        assert entry.result.frequencies == pytest.approx({"1": 0.3, "2": 0.7})

    def test_campaign_endpoints(self, service, client, experiment):
        campaign = Campaign.grid("served", experiment, trials=30, seeds=(1, 2))
        result = CampaignRunner(service.store).run(campaign)
        assert client.campaigns() == [result.campaign_id]
        manifest = client.campaign(result.campaign_id)
        assert manifest["name"] == "served"
        assert len(manifest["cells"]) == 2


class TestServeCli:
    def test_serve_round_trip_via_subprocess(self, tmp_path):
        """End-to-end: `repro serve` on an ephemeral port + client miss→hit."""
        from pathlib import Path

        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--store", str(tmp_path / "store"), "--port", "0", "--quiet",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            match = re.search(r"listening on (http://[\d.]+:\d+)", line)
            assert match, f"unexpected serve banner: {line!r}"
            url = match.group(1)
            client = ServiceClient(url, timeout=120.0)
            deadline = time.time() + 30.0
            while True:
                try:
                    assert client.healthz()["status"] == "ok"
                    break
                except ServiceError:
                    if time.time() > deadline:
                        raise
                    time.sleep(0.1)
            experiment = Experiment.from_distribution({"a": 0.5, "b": 0.5}, gamma=50)
            first = client.simulate_entry(experiment, trials=40, seed=2)
            second = client.simulate_entry(experiment, trials=40, seed=2)
            assert not first.cached and second.cached
            assert first.result.to_json() == second.result.to_json()
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
