"""Tests for stopping conditions (repro.sim.events)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StoppingConditionError
from repro.sim import (
    AllCondition,
    AnyCondition,
    CategoryFiringCondition,
    CompiledNetwork,
    FiringCountCondition,
    OutcomeThresholds,
    PredicateCondition,
    SpeciesThreshold,
)


@pytest.fixture
def compiled(example1_network):
    return CompiledNetwork.compile(example1_network)


def _counts(compiled, **overrides):
    counts = compiled.initial_counts().copy()
    index = {s.name: i for i, s in enumerate(compiled.species)}
    for name, value in overrides.items():
        counts[index[name]] = value
    return counts


def _firings(compiled, **by_name):
    firings = np.zeros(compiled.n_reactions, dtype=np.int64)
    for name, value in by_name.items():
        firings[compiled.network.index_of(name)] = value
    return firings


class TestSpeciesThreshold:
    def test_triggers_at_threshold(self, compiled):
        condition = SpeciesThreshold("d_1", 5)
        condition.reset(compiled)
        assert condition.check(0.0, _counts(compiled, d_1=5), compiled, _firings(compiled)) == "d_1>=5"

    def test_not_triggered_below(self, compiled):
        condition = SpeciesThreshold("d_1", 5)
        condition.reset(compiled)
        assert condition.check(0.0, _counts(compiled, d_1=4), compiled, _firings(compiled)) is None

    def test_less_equal_comparison(self, compiled):
        condition = SpeciesThreshold("e_1", 0, comparison="<=", label="drained")
        condition.reset(compiled)
        assert condition.check(0.0, _counts(compiled, e_1=0), compiled, _firings(compiled)) == "drained"

    def test_unknown_species_raises_on_reset(self, compiled):
        with pytest.raises(StoppingConditionError):
            SpeciesThreshold("nope", 1).reset(compiled)

    def test_invalid_comparison(self):
        with pytest.raises(StoppingConditionError):
            SpeciesThreshold("a", 1, comparison=">")


class TestOutcomeThresholds:
    def test_returns_label(self, compiled):
        condition = OutcomeThresholds({"win1": ("o_1", 3), "win2": ("o_2", 3)})
        condition.reset(compiled)
        assert condition.check(0.0, _counts(compiled, o_2=3), compiled, _firings(compiled)) == "win2"

    def test_none_when_no_threshold_met(self, compiled):
        condition = OutcomeThresholds({"win1": ("o_1", 3)})
        condition.reset(compiled)
        assert condition.check(0.0, _counts(compiled), compiled, _firings(compiled)) is None

    def test_empty_mapping_rejected(self):
        with pytest.raises(StoppingConditionError):
            OutcomeThresholds({})

    def test_unknown_species_rejected(self, compiled):
        with pytest.raises(StoppingConditionError):
            OutcomeThresholds({"x": ("missing", 1)}).reset(compiled)


class TestFiringConditions:
    def test_firing_count_total(self, compiled):
        condition = FiringCountCondition([0, 1], 3, label="enough")
        firings = _firings(compiled)
        firings[0], firings[1] = 2, 1
        assert condition.check(0.0, _counts(compiled), compiled, firings) == "enough"

    def test_firing_count_not_reached(self, compiled):
        condition = FiringCountCondition([0], 3)
        assert condition.check(0.0, _counts(compiled), compiled, _firings(compiled)) is None

    def test_firing_count_validation(self):
        with pytest.raises(StoppingConditionError):
            FiringCountCondition([], 1)
        with pytest.raises(StoppingConditionError):
            FiringCountCondition([0], 0)

    def test_category_condition_reports_reaction_name(self, compiled):
        condition = CategoryFiringCondition("working", 10)
        condition.reset(compiled)
        firings = _firings(compiled, **{"working[2]": 10})
        assert condition.check(0.0, _counts(compiled), compiled, firings) == "working[2]"

    def test_category_condition_requires_each_reaction_individually(self, compiled):
        condition = CategoryFiringCondition("working", 10)
        condition.reset(compiled)
        firings = _firings(compiled, **{"working[1]": 5, "working[2]": 5})
        assert condition.check(0.0, _counts(compiled), compiled, firings) is None

    def test_category_missing_raises(self, compiled):
        with pytest.raises(StoppingConditionError):
            CategoryFiringCondition("nonexistent", 1).reset(compiled)


class TestCombinators:
    def test_predicate_condition(self, compiled):
        condition = PredicateCondition(
            lambda time, state: "hit" if state.get("d_1", 0) >= 2 else None
        )
        assert condition.check(0.0, _counts(compiled, d_1=2), compiled, _firings(compiled)) == "hit"
        assert condition.check(0.0, _counts(compiled), compiled, _firings(compiled)) is None

    def test_any_condition_first_match_wins(self, compiled):
        condition = AnyCondition(
            [SpeciesThreshold("d_1", 1, label="one"), SpeciesThreshold("d_2", 1, label="two")]
        )
        condition.reset(compiled)
        assert condition.check(0.0, _counts(compiled, d_2=1), compiled, _firings(compiled)) == "two"

    def test_all_condition_requires_every_child(self, compiled):
        condition = AllCondition(
            [SpeciesThreshold("d_1", 1, label="a"), SpeciesThreshold("d_2", 1, label="b")]
        )
        condition.reset(compiled)
        assert condition.check(0.0, _counts(compiled, d_1=1), compiled, _firings(compiled)) is None
        both = _counts(compiled, d_1=1, d_2=1)
        assert condition.check(0.0, both, compiled, _firings(compiled)) == "a & b"

    def test_empty_combinators_rejected(self):
        with pytest.raises(StoppingConditionError):
            AnyCondition([])
        with pytest.raises(StoppingConditionError):
            AllCondition([])


# ---------------------------------------------------------------------------
# end-to-end stopping edge cases (satellite coverage for the kernel layer PR)
# ---------------------------------------------------------------------------


class TestStoppingEdgeCasesEndToEnd:
    """Integration edge cases: t=0 triggers, final-firing triggers, and
    stop_detail propagation into Trajectory / EnsembleResult — exercised on
    the python template, the kernel backends, and the batched engine."""

    PER_TRIAL_BACKENDS = ("python", "numpy")

    @pytest.mark.parametrize("backend", PER_TRIAL_BACKENDS)
    def test_condition_already_true_at_t0(self, backend):
        from repro.crn import parse_network
        from repro.sim import StopReason, make_simulator

        net = parse_network("x ->{1} 0\ninit: x = 5")
        trajectory = make_simulator(net, engine="direct", seed=1).run(
            stopping=SpeciesThreshold("x", 5), backend=backend
        )
        assert trajectory.stop_reason == StopReason.CONDITION
        assert trajectory.stop_detail == "x>=5"
        assert trajectory.n_firings == 0 and trajectory.final_time == 0.0

    def test_condition_already_true_at_t0_batched(self):
        from repro.crn import parse_network
        from repro.sim import StopReason, make_simulator

        net = parse_network("x ->{1} 0\ninit: x = 5")
        batch = make_simulator(net, engine="batch-direct", seed=1).run_batch(
            8, stopping=SpeciesThreshold("x", 5)
        )
        assert all(reason == StopReason.CONDITION for reason in batch.stop_reasons)
        assert all(detail == "x>=5" for detail in batch.stop_details)
        assert batch.firing_counts.sum() == 0
        assert np.all(batch.final_times == 0.0)

    @pytest.mark.parametrize("backend", PER_TRIAL_BACKENDS)
    def test_condition_triggering_on_the_final_firing(self, backend):
        # Every molecule decays; the <=0 threshold becomes true exactly on
        # the last possible firing — the run must stop on CONDITION, not
        # EXHAUSTED, with the full event count.
        from repro.crn import parse_network
        from repro.sim import StopReason, make_simulator

        net = parse_network("x ->{1} 0\ninit: x = 5")
        trajectory = make_simulator(net, engine="direct", seed=3).run(
            stopping=SpeciesThreshold("x", 0, comparison="<=", label="gone"),
            backend=backend,
        )
        assert trajectory.stop_reason == StopReason.CONDITION
        assert trajectory.stop_detail == "gone"
        assert trajectory.n_firings == 5
        assert trajectory.final_time == pytest.approx(trajectory.times[-1])

    def test_condition_triggering_on_the_final_firing_batched(self):
        from repro.crn import parse_network
        from repro.sim import StopReason, make_simulator

        net = parse_network("x ->{1} 0\ninit: x = 5")
        batch = make_simulator(net, engine="batch-direct", seed=3).run_batch(
            16, stopping=SpeciesThreshold("x", 0, comparison="<=", label="gone")
        )
        assert all(reason == StopReason.CONDITION for reason in batch.stop_reasons)
        assert all(detail == "gone" for detail in batch.stop_details)
        assert np.all(batch.firing_counts.sum(axis=1) == 5)

    @pytest.mark.parametrize("backend", PER_TRIAL_BACKENDS)
    def test_stop_detail_propagates_into_ensemble_outcomes(self, backend):
        # The default ensemble classifier labels trials by stop_detail; the
        # outcome thresholds' label must therefore flow end to end.
        from repro.api import Experiment
        from repro.crn import parse_network

        net = parse_network(
            """
            init: e1 = 10
            init: e2 = 10
            e1 ->{1} d1
            e2 ->{1} d2
            """
        )
        stopping = OutcomeThresholds({"one": ("d1", 2), "two": ("d2", 2)})
        result = Experiment.from_network(net, stopping=stopping).simulate(
            trials=60, seed=9, backend=backend
        )
        counts = result.ensemble.outcome_counts
        assert set(counts) <= {"one", "two"}
        assert sum(counts.values()) == 60
        assert counts.get("one", 0) > 0 and counts.get("two", 0) > 0

    def test_stop_detail_propagates_with_batched_engine(self):
        from repro.api import Experiment
        from repro.crn import parse_network

        net = parse_network(
            """
            init: e1 = 10
            init: e2 = 10
            e1 ->{1} d1
            e2 ->{1} d2
            """
        )
        stopping = OutcomeThresholds({"one": ("d1", 2), "two": ("d2", 2)})
        result = Experiment.from_network(net, stopping=stopping).simulate(
            trials=60, seed=9, engine="batch-direct"
        )
        counts = result.ensemble.outcome_counts
        assert set(counts) <= {"one", "two"}
        assert sum(counts.values()) == 60
