"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

import numpy as np

from repro.analysis import hellinger, jensen_shannon, normalize, total_variation
from repro.core import DistributionSpec, quantize_distribution
from repro.core.stochastic_module import build_stochastic_module, expected_first_firing_distribution
from repro.crn import (
    GeneratorConfig,
    Reaction,
    ReactionNetwork,
    State,
    generate_model,
    model_from_dict,
    model_from_json,
    model_from_yaml,
    model_to_dict,
    model_to_json,
    model_to_yaml,
    network_from_dict,
    network_from_json,
    network_to_dict,
    network_to_json,
)
from repro.sim import CompiledNetwork, combinations, reaction_propensity

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

species_names = st.sampled_from(["a", "b", "c", "d", "e1", "e2", "x", "y"])
side_strategy = st.dictionaries(species_names, st.integers(min_value=1, max_value=3), max_size=3)
counts_strategy = st.dictionaries(species_names, st.integers(min_value=0, max_value=50), max_size=6)

probability_lists = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=2, max_size=6
).filter(lambda values: sum(values) > 1e-6)


def normalized(values):
    total = sum(values)
    return [v / total for v in values]


# ---------------------------------------------------------------------------
# state / reaction invariants
# ---------------------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(counts=counts_strategy, reactants=side_strategy, products=side_strategy)
def test_reaction_application_conserves_stoichiometry(counts, reactants, products):
    assume(reactants or products)
    reaction = Reaction(reactants, products, rate=1.0)
    state = State(counts)
    if not state.can_fire(reaction):
        with pytest.raises(Exception):
            state.apply(reaction)
        return
    before = state.to_dict()
    state.apply(reaction)
    after = state.to_dict()
    for species, delta in reaction.net_change().items():
        assert after.get(species.name, 0) - before.get(species.name, 0) == delta
    untouched = set(before) | set(after)
    for name in untouched:
        if all(name != s.name for s in reaction.net_change()):
            assert before.get(name, 0) == after.get(name, 0)
    # Counts never go negative by construction.
    assert all(v >= 0 for v in after.values())


@settings(max_examples=150, deadline=None)
@given(reactants=side_strategy, products=side_strategy, rate=st.floats(min_value=1e-6, max_value=1e6))
def test_reaction_rename_roundtrip(reactants, products, rate):
    assume(reactants or products)
    reaction = Reaction(reactants, products, rate=rate)
    mapping = {name: f"ns.{name}" for name in {s.name for s in reaction.species}}
    inverse = {v: k for k, v in mapping.items()}
    assert reaction.rename_species(mapping).rename_species(inverse) == reaction


@settings(max_examples=100, deadline=None)
@given(count=st.integers(min_value=0, max_value=200), needed=st.integers(min_value=0, max_value=4))
def test_combinations_matches_binomial(count, needed):
    assert combinations(count, needed) == math.comb(count, needed)


# ---------------------------------------------------------------------------
# quantization and programmed distributions
# ---------------------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(values=probability_lists, scale=st.integers(min_value=1, max_value=500))
def test_quantize_distribution_sums_to_scale(values, scale):
    probabilities = normalized(values)
    counts = quantize_distribution(probabilities, scale)
    assert sum(counts) == scale
    assert all(c >= 0 for c in counts)
    # Every count stays within the number of outcomes of the unconstrained
    # ideal (largest-remainder rounding plus the keep-one-molecule adjustment).
    for probability, count in zip(probabilities, counts):
        assert abs(count - probability * scale) <= len(probabilities) + 1e-9
    # Outcomes with positive probability are never starved when there is room.
    if scale >= len(probabilities):
        for probability, count in zip(probabilities, counts):
            if probability > 1e-3:
                assert count >= 1


@settings(max_examples=100, deadline=None)
@given(values=probability_lists)
def test_programmed_distribution_matches_quantities(values):
    probabilities = normalized(values)
    assume(all(p > 0.01 for p in probabilities))
    labels = [f"o{i}" for i in range(len(probabilities))]
    spec = DistributionSpec(labels, probabilities)
    quantities = spec.initial_quantities(1000)
    programmed = expected_first_firing_distribution(quantities)
    for label, probability in zip(labels, probabilities):
        assert programmed[label] == pytest.approx(probability, abs=2e-3)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=2, max_size=4),
    gamma=st.floats(min_value=1.0, max_value=1e4),
)
def test_stochastic_module_structure_invariants(values, gamma):
    """For any spec, the generated module has the right census and rate ordering."""
    probabilities = normalized(values)
    labels = [f"t{i}" for i in range(len(probabilities))]
    spec = DistributionSpec(labels, probabilities)
    network = build_stochastic_module(spec, gamma=gamma, scale=100)
    n = len(labels)
    assert len(network.reactions_in_category("initializing")) == n
    assert len(network.reactions_in_category("reinforcing")) == n
    assert len(network.reactions_in_category("working")) == n
    assert len(network.reactions_in_category("stabilizing")) == n * (n - 1)
    assert len(network.reactions_in_category("purifying")) == n * (n - 1) // 2
    # Rate ordering: initializing ≈ working ≤ reinforcing = stabilizing ≤ purifying.
    init_rate = network.reactions_in_category("initializing")[0][1].rate
    reinforce_rate = network.reactions_in_category("reinforcing")[0][1].rate
    purify_rate = network.reactions_in_category("purifying")[0][1].rate
    assert init_rate <= reinforce_rate <= purify_rate
    # Input quantities realize the target distribution up to 1/scale granularity.
    total = sum(network.initial_count(f"e_{label}") for label in labels)
    assert total == 100


# ---------------------------------------------------------------------------
# distribution distances
# ---------------------------------------------------------------------------


@st.composite
def paired_distributions(draw):
    """Two distributions over the same label set (as dictionaries)."""
    size = draw(st.integers(min_value=2, max_value=6))
    positive_list = st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=size,
        max_size=size,
    ).filter(lambda values: sum(values) > 1e-6)
    p = normalized(draw(positive_list))
    q = normalized(draw(positive_list))
    labels = [f"l{i}" for i in range(size)]
    return dict(zip(labels, p)), dict(zip(labels, q))


@settings(max_examples=150, deadline=None)
@given(pair=paired_distributions())
def test_total_variation_is_a_metric(pair):
    p_map, q_map = pair
    tv = total_variation(p_map, q_map)
    assert 0.0 <= tv <= 1.0 + 1e-12
    assert tv == pytest.approx(total_variation(q_map, p_map))
    assert total_variation(p_map, p_map) == pytest.approx(0.0, abs=1e-12)


@settings(max_examples=100, deadline=None)
@given(pair=paired_distributions())
def test_hellinger_and_js_bounds(pair):
    p_map, q_map = pair
    assert 0.0 <= hellinger(p_map, q_map) <= 1.0 + 1e-12
    assert 0.0 <= jensen_shannon(p_map, q_map) <= math.log(2) + 1e-12


@settings(max_examples=100, deadline=None)
@given(values=probability_lists)
def test_normalize_produces_distribution(values):
    labels = [f"l{i}" for i in range(len(values))]
    result = normalize(dict(zip(labels, values)))
    assert sum(result.values()) == pytest.approx(1.0)
    assert all(v >= 0 for v in result.values())


# ---------------------------------------------------------------------------
# compiled-network propensities vs the reference implementation
# ---------------------------------------------------------------------------


@st.composite
def random_networks(draw):
    """A small random mass-action network with a random initial state."""
    n_reactions = draw(st.integers(min_value=1, max_value=5))
    reactions = []
    for i in range(n_reactions):
        reactants = draw(side_strategy)
        products = draw(side_strategy)
        if not reactants and not products:
            products = {"a": 1}
        rate = draw(st.floats(min_value=1e-3, max_value=1e3, allow_nan=False))
        reactions.append(
            Reaction(
                reactants,
                products,
                rate=rate,
                name=f"r{i}",
                category=draw(st.sampled_from(["", "working", "misc"])),
            )
        )
    initial = draw(counts_strategy)
    return ReactionNetwork(reactions, initial_state=initial, name="random-net")


@settings(max_examples=100, deadline=None)
@given(network=random_networks(), counts=counts_strategy)
def test_compiled_propensities_match_reference(network, counts):
    """CompiledNetwork's flat-array fast path equals reaction_propensity.

    The compiled evaluator, the per-reaction ``all_propensities`` vector and
    the FSP solver's batched evaluator must all agree with the plain
    per-reaction reference on every (network, state) pair.
    """
    from repro.sim.fsp import _batch_propensities

    compiled = CompiledNetwork.compile(network)
    state = State({s.name: counts.get(s.name, 0) for s in compiled.species})
    vector = state.to_vector(compiled.species)
    reference = [
        reaction_propensity(reaction, state) for reaction in network.reactions
    ]
    for j, expected in enumerate(reference):
        assert compiled.propensity(j, vector) == pytest.approx(expected, rel=1e-12)
    assert compiled.all_propensities(vector) == pytest.approx(reference, rel=1e-12)
    batched = _batch_propensities(compiled, np.asarray([vector], dtype=np.int64))
    assert batched[0] == pytest.approx(reference, rel=1e-12)


@settings(max_examples=100, deadline=None)
@given(network=random_networks(), counts=counts_strategy)
def test_propensities_are_nonnegative_and_zero_without_reactants(network, counts):
    compiled = CompiledNetwork.compile(network)
    state = State({s.name: counts.get(s.name, 0) for s in compiled.species})
    vector = state.to_vector(compiled.species)
    for j, reaction in enumerate(network.reactions):
        propensity = compiled.propensity(j, vector)
        assert propensity >= 0.0
        if not state.can_fire(reaction):
            assert propensity == 0.0


# ---------------------------------------------------------------------------
# serialization round trips
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(network=random_networks())
def test_network_dict_round_trip_preserves_structure(network):
    """serialize → parse keeps stoichiometry, rates, names and initial state."""
    rebuilt = network_from_dict(network_to_dict(network))
    assert len(rebuilt.reactions) == len(network.reactions)
    for original, restored in zip(network.reactions, rebuilt.reactions):
        assert restored == original  # reactants, products, rate, name, category
        assert restored.net_change() == original.net_change()
        assert restored.rate == original.rate
    assert rebuilt.initial_state.to_dict() == network.initial_state.to_dict()
    assert {s.name for s in rebuilt.species} == {s.name for s in network.species}


@settings(max_examples=50, deadline=None)
@given(network=random_networks())
def test_network_json_round_trip_is_stable(network):
    """JSON text round trips exactly (floats survive via repr) and re-serializes
    to the same canonical text."""
    text = network_to_json(network)
    rebuilt = network_from_json(text)
    assert network_to_json(rebuilt) == text
    # A second hop changes nothing (idempotent fixed point).
    assert network_from_json(network_to_json(rebuilt)) == rebuilt


# ---------------------------------------------------------------------------
# declarative model importer: parse → serialize → parse identity over the
# whole space of generator outputs (the conformance corpus round-trip law)
# ---------------------------------------------------------------------------


@st.composite
def generator_models(draw):
    """An arbitrary valid random-CRN generator output."""
    n_outcomes = draw(st.integers(min_value=2, max_value=4))
    chain_length = draw(st.integers(min_value=1, max_value=3))
    max_edges = n_outcomes * (n_outcomes - 1) * chain_length * (chain_length + 1) // 2
    config = GeneratorConfig(
        n_outcomes=n_outcomes,
        chain_length=chain_length,
        cross_edges=draw(st.integers(min_value=0, max_value=min(3, max_edges))),
        catalytic_edges=draw(st.integers(min_value=0, max_value=min(2, max_edges))),
        scale=draw(st.integers(min_value=2 * n_outcomes, max_value=40)),
        stiffness=draw(st.floats(min_value=0.0, max_value=4.0, allow_nan=False)),
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return generate_model(config, seed)


@settings(max_examples=25, deadline=None)
@given(model=generator_models())
def test_importer_round_trip_is_identity_for_generated_models(model):
    """parse(serialize(model)) == model through dict, YAML and JSON forms."""
    assert model_from_dict(model_to_dict(model)) == model
    assert model_from_yaml(model_to_yaml(model)) == model
    assert model_from_json(model_to_json(model)) == model


@settings(max_examples=25, deadline=None)
@given(model=generator_models())
def test_importer_serialized_text_is_a_fixed_point(model):
    """Serialization is canonical: one parse→serialize hop reaches a fixed
    point, so documents can be re-saved without churn."""
    text = model_to_yaml(model)
    assert model_to_yaml(model_from_yaml(text)) == text
    json_text = model_to_json(model)
    assert model_to_json(model_from_json(json_text)) == json_text


@settings(max_examples=25, deadline=None)
@given(model=generator_models())
def test_generated_models_build_consistent_networks(model):
    """The document's network honours its census: declared initial counts,
    closed-model conservation, and every outcome species present."""
    network = model.network()
    for spec in model.species:
        assert network.initial_count(spec.name) == spec.initial
    species_names_set = {s.name for s in network.species}
    for outcome in model.outcomes:
        assert outcome.species in species_names_set
    for reaction in network.reactions:
        consumed = sum(reaction.reactants.values())
        produced = sum(reaction.products.values())
        assert produced <= consumed  # closed by construction
