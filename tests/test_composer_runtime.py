"""Tests for module composition (Section 2.2.2) and module settling."""

from __future__ import annotations

import pytest

from repro.core import SystemComposer, default_horizon, settle_module
from repro.core.modules import (
    exponentiation_module,
    fanout_module,
    linear_module,
    logarithm_module,
)
from repro.errors import ModuleCompositionError, SimulationError
from repro.sim import DirectMethodSimulator, SimulationOptions


class TestSystemComposer:
    def test_two_instances_of_same_module_do_not_collide(self):
        """Two linear modules both use internal naming but must stay distinct."""
        composer = SystemComposer("pair")
        composer.add_module("double", linear_module(alpha=1, beta=2,
                                                    input_name="x", output_name="mid"))
        composer.add_module("triple", linear_module(alpha=1, beta=3,
                                                    input_name="mid", output_name="out"))
        network = composer.build(initial={"x": 4})
        result = DirectMethodSimulator(network, seed=1).run()
        # x=4 -> mid=8 -> out=24
        assert result.final_count("out") == 24

    def test_chained_log_then_gain(self):
        """log2 followed by a gain of 6 computes the lambda model's 6·log2(MOI)."""
        composer = SystemComposer("chain")
        composer.add_module("log", logarithm_module(input_name="moi", output_name="ylog"))
        composer.add_module("gain", linear_module(alpha=1, beta=6,
                                                  input_name="ylog", output_name="y2"))
        network = composer.build(initial={"moi": 8})
        trajectory = DirectMethodSimulator(network, seed=2).run(
            options=SimulationOptions(max_time=1.0, record_firings=False)
        )
        assert trajectory.final_count("y2") == 18

    def test_fanout_feeds_two_branches(self):
        composer = SystemComposer("branches")
        composer.add_module("split", fanout_module("inp", ["a_in", "b_in"]))
        composer.add_module("da", linear_module(alpha=1, beta=2, input_name="a_in",
                                                output_name="a_out"))
        composer.add_module("db", linear_module(alpha=2, beta=1, input_name="b_in",
                                                output_name="b_out"))
        network = composer.build(initial={"inp": 6})
        result = DirectMethodSimulator(network, seed=3).run()
        assert result.final_count("a_out") == 12
        assert result.final_count("b_out") == 3

    def test_connections_rename_ports(self):
        composer = SystemComposer("wired")
        placed = composer.add_module(
            "exp", exponentiation_module(), connections={"y": "stage_two_input"}
        )
        assert placed.output_species("y") == "stage_two_input"
        network = composer.build(initial={"x": 3})
        result = DirectMethodSimulator(network, seed=4).run()
        assert result.final_count("stage_two_input") == 8

    def test_duplicate_instance_name_rejected(self):
        composer = SystemComposer()
        composer.add_module("m", linear_module())
        with pytest.raises(ModuleCompositionError):
            composer.add_module("m", linear_module())

    def test_unknown_connection_species_rejected(self):
        composer = SystemComposer()
        with pytest.raises(ModuleCompositionError):
            composer.add_module("m", linear_module(), connections={"nonport": "z"})

    def test_instances_and_lookup(self):
        composer = SystemComposer()
        composer.add_module("a", linear_module())
        composer.add_module("b", exponentiation_module(input_name="y", output_name="z"))
        assert composer.instances == ("a", "b")
        assert composer.instance("a").name == "linear"
        with pytest.raises(ModuleCompositionError):
            composer.instance("c")

    def test_metadata_records_composition(self):
        composer = SystemComposer("meta")
        composer.add_module("a", linear_module())
        network = composer.build()
        recorded = network.metadata["composition"]["instances"]
        assert recorded[0]["name"] == "a"
        assert recorded[0]["kind"] == "linear"

    def test_add_reaction_glue(self):
        composer = SystemComposer()
        composer.add_module("a", linear_module())
        composer.add_reaction({"y": 1}, {"z": 1}, rate=1e6, name="glue[y->z]")
        network = composer.build(initial={"x": 5})
        result = DirectMethodSimulator(network, seed=5).run()
        assert result.final_count("z") == 5


class TestRuntime:
    def test_default_horizon_scales_with_slowest_rate(self):
        module = linear_module(tiers=None, tier="slow")
        horizon = default_horizon(module, rounds=100)
        slowest = min(r.rate for r in module.network.reactions)
        assert horizon == pytest.approx(100 / slowest)

    def test_settle_respects_inputs_by_role(self):
        module = linear_module(alpha=1, beta=4)
        assert settle_module(module, {"x": 3}, seed=1).output("y") == 12

    def test_settle_statistics_validation(self):
        from repro.core import settle_statistics

        with pytest.raises(SimulationError):
            settle_statistics(linear_module(), {"x": 1}, n_trials=0)

    def test_settle_result_contains_diagnostics(self):
        result = settle_module(linear_module(), {"x": 2}, seed=2)
        assert result.n_firings == 2
        assert result.stop_reason in ("exhausted", "max_time")
        assert result.final_state["y"] == 2
