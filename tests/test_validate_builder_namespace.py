"""Tests for network validation, the fluent builder, and namespacing."""

from __future__ import annotations

import pytest

from repro.crn import (
    NetworkBuilder,
    ReactionNetwork,
    Species,
    build_namespace_map,
    check_network,
    namespace_network,
    parse_network,
    validate_network,
    wire,
)
from repro.errors import NetworkValidationError


class TestValidation:
    def test_valid_network_passes(self, example1_network):
        report = validate_network(example1_network)
        assert report.ok
        assert str(report) != ""

    def test_empty_network_is_error(self):
        report = validate_network(ReactionNetwork())
        assert not report.ok
        with pytest.raises(NetworkValidationError):
            report.raise_if_failed()

    def test_empty_network_allowed_when_requested(self):
        assert validate_network(ReactionNetwork(), require_nonempty=False).ok

    def test_unproducible_species_warns(self):
        net = parse_network("ghost ->{1} x")  # ghost never produced, starts at 0
        report = validate_network(net)
        assert report.ok
        assert any("ghost" in warning for warning in report.warnings)

    def test_inert_network_flagged(self):
        net = parse_network("a + b ->{1} c")  # nothing to fire (all zero)
        report = validate_network(net, require_firable=True)
        assert not report.ok

    def test_expected_categories_checked(self, example1_network):
        report = validate_network(
            example1_network,
            expected_categories=["initializing", "working", "nonexistent"],
        )
        assert any("nonexistent" in error for error in report.errors)

    def test_check_network_returns_report(self, example1_network):
        assert check_network(example1_network).ok

    def test_check_network_raises(self):
        with pytest.raises(NetworkValidationError):
            check_network(ReactionNetwork())


class TestBuilder:
    def test_fluent_construction(self):
        net = (
            NetworkBuilder("demo")
            .reaction({"e1": 1}, {"d1": 1}, rate=1.0, category="initializing")
            .reaction({"e2": 1}, {"d2": 1}, rate=1.0, category="initializing")
            .text("d1 + d2 ->{1e6} 0", category="purifying")
            .initial("e1", 30)
            .initials({"e2": 70})
            .declare("spare")
            .annotate(gamma=1e3)
            .build()
        )
        assert net.size == 3
        assert net.reaction(0).name == "initializing[1]"
        assert net.reaction(1).name == "initializing[2]"
        assert net.reaction(2).category == "purifying"
        assert net.initial_count("e2") == 70
        assert net.has_species("spare")
        assert net.metadata["gamma"] == 1e3

    def test_extend_merges_initials(self, race_network):
        builder = NetworkBuilder("x")
        builder.initial("e1", 5)
        builder.extend(race_network)
        net = builder.build()
        assert net.initial_count("e1") == 35
        assert net.size == race_network.size

    def test_add_existing_reaction_with_category(self):
        from repro.crn import Reaction

        builder = NetworkBuilder()
        builder.add(Reaction({"a": 1}, {"b": 1}, rate=1.0), category="working")
        assert builder.build().reaction(0).name == "working[1]"


class TestNamespacing:
    def test_namespace_map_keeps_ports(self):
        species = [Species("x"), Species("y"), Species("internal")]
        mapping = build_namespace_map(species, "log", keep=["x", "y"])
        assert mapping[Species("x")] == Species("x")
        assert mapping[Species("internal")] == Species("log.internal")

    def test_namespace_network(self):
        net = parse_network("init: x = 4\nx + helper ->{1} y\nhelper ->{1} 0\ninit: helper = 1")
        spaced = namespace_network(net, "m1", keep=["x", "y"])
        names = {s.name for s in spaced.species}
        assert "m1.helper" in names and "helper" not in names
        assert "x" in names and "y" in names
        assert spaced.initial_count("m1.helper") == 1
        assert spaced.initial_count("x") == 4

    def test_wire_renames_ports(self):
        net = parse_network("a ->{1} y_out")
        wired = wire(net, {"y_out": "e_1"})
        assert wired.has_species("e_1")
        assert not wired.has_species("y_out")

    def test_empty_prefix_identity(self):
        net = parse_network("a ->{1} b")
        assert namespace_network(net, "") == net
