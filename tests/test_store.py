"""Tests for the content-addressed result store (fingerprint, cache, GC)."""

from __future__ import annotations

import gzip
import json

import pytest

import repro
from repro.api import Experiment
from repro.crn import parse_network
from repro.errors import (
    ExperimentError,
    FingerprintError,
    StoreError,
    StoppingConditionError,
)
from repro.sim import SimulationOptions
from repro.sim.ensemble import EnsembleRunner
from repro.sim.events import (
    AllCondition,
    AnyCondition,
    CategoryFiringCondition,
    FiringCountCondition,
    OutcomeThresholds,
    PredicateCondition,
    SpeciesThreshold,
    StoppingCondition,
    condition_from_descriptor,
)
from repro.sim.fsp import FspEngine, FspOptions, FspResult
from repro.sim.registry import registry
from repro.store import (
    ResultStore,
    canonical_json,
    compute_payload,
    experiment_to_payload,
    fingerprint_payload,
)


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")


@pytest.fixture
def experiment() -> Experiment:
    return Experiment.from_distribution({"1": 0.3, "2": 0.4, "3": 0.3}, gamma=100)


def payload_of(experiment, **kwargs):
    kwargs.setdefault("trials", 50)
    kwargs.setdefault("engine", "direct")
    kwargs.setdefault("seed", 11)
    return experiment_to_payload(experiment, **kwargs)


# ---------------------------------------------------------------------------
# canonical fingerprints
# ---------------------------------------------------------------------------


class TestFingerprint:
    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == canonical_json(
            {"a": [2, 3], "b": 1}
        )

    def test_canonical_json_rejects_nonfinite(self):
        with pytest.raises(FingerprintError):
            canonical_json({"x": float("inf")})

    def test_fingerprint_stable_across_calls(self, experiment):
        first = fingerprint_payload(payload_of(experiment, seed=1))
        second = fingerprint_payload(payload_of(experiment, seed=1))
        assert first == second
        assert len(first) == 64 and set(first) <= set("0123456789abcdef")

    def test_fingerprint_excludes_version(self, experiment):
        payload = payload_of(experiment, seed=1)
        rewritten = dict(payload, version="0.0.0-other")
        assert fingerprint_payload(payload) == fingerprint_payload(rewritten)

    @pytest.mark.parametrize(
        "change",
        [
            {"trials": 51},
            {"seed": 2},
            {"engine": "batch-direct"},
            {"backend": "numpy"},
            {"chunk_size": 64},
        ],
    )
    def test_fingerprint_sensitive_to_simulate_args(self, experiment, change):
        base = fingerprint_payload(payload_of(experiment, seed=1))
        varied = fingerprint_payload(payload_of(experiment, **{"seed": 1, **change}))
        assert base != varied

    def test_fingerprint_sensitive_to_inputs(self):
        base = Experiment.from_distribution({"a": 0.5, "b": 0.5}, gamma=50)
        assert fingerprint_payload(payload_of(base)) != fingerprint_payload(
            payload_of(base.program({"e_a": 10}))
        )

    def test_unseeded_sampling_run_rejected(self, store, experiment):
        # seed=None draws fresh entropy per run; caching would alias distinct
        # random samples to the first result, so fingerprinting refuses it.
        with pytest.raises(FingerprintError, match="unseeded"):
            payload_of(experiment, seed=None)
        with pytest.raises(FingerprintError, match="unseeded"):
            experiment.simulate(trials=10, store=store)

    def test_unseeded_exact_engine_allowed(self, store, experiment):
        # fsp takes no seed — there is nothing random to alias.
        cold = experiment.simulate(trials=100, engine="fsp", store=store)
        warm = experiment.simulate(trials=100, engine="fsp", store=store)
        assert cold.to_json() == warm.to_json()

    def test_lambda_classifier_rejected(self, race_network):
        experiment = Experiment.from_network(
            race_network, classifier=lambda trajectory: "x"
        )
        with pytest.raises(FingerprintError, match="module-level"):
            payload_of(experiment)

    def test_predicate_condition_rejected(self, race_network):
        experiment = Experiment.from_network(
            race_network,
            stopping=PredicateCondition(lambda time, state: None),
        )
        with pytest.raises(FingerprintError, match="cannot be serialized"):
            payload_of(experiment)


class TestConditionDescriptors:
    @pytest.mark.parametrize(
        "condition",
        [
            SpeciesThreshold("x", 5),
            SpeciesThreshold("x", 2, comparison="<=", label="drained"),
            OutcomeThresholds({"win": ("x", 3), "lose": ("y", 4)}),
            FiringCountCondition([0, 2], 7, label="seven"),
            CategoryFiringCondition("working", 10),
            AnyCondition([SpeciesThreshold("x", 5), CategoryFiringCondition("working", 2)]),
            AllCondition([SpeciesThreshold("x", 5), SpeciesThreshold("y", 1)]),
        ],
    )
    def test_round_trip(self, condition):
        descriptor = condition.to_descriptor()
        rebuilt = condition_from_descriptor(descriptor)
        assert rebuilt.to_descriptor() == descriptor
        assert canonical_json(descriptor)  # JSON-compatible

    def test_none_passes_through(self):
        assert condition_from_descriptor(None) is None

    def test_unknown_type_raises(self):
        with pytest.raises(StoppingConditionError, match="unknown"):
            condition_from_descriptor({"type": "no-such-condition"})

    def test_base_class_has_no_descriptor(self):
        class Custom(StoppingCondition):
            pass

        with pytest.raises(StoppingConditionError, match="to_descriptor"):
            Custom().to_descriptor()


# ---------------------------------------------------------------------------
# cache semantics (the acceptance criterion)
# ---------------------------------------------------------------------------


def engine_backend_matrix():
    """Every registered sampling engine × every backend it supports (+auto)."""
    combos = []
    for name in registry.names():
        info = registry.get(name)
        if info.deterministic and not info.computes_distribution:
            continue  # ode: ensembles reject it
        backends = ("auto",) + tuple(info.backends)
        for backend in backends:
            if info.computes_distribution and backend != "auto":
                continue
            combos.append((name, backend))
    return combos


class TestCacheHits:
    @pytest.mark.parametrize("engine,backend", engine_backend_matrix())
    def test_warm_cache_is_bit_identical(self, store, experiment, engine, backend):
        kwargs = dict(trials=40, engine=engine, seed=11, backend=backend, store=store)
        cold = experiment.simulate(**kwargs)
        warm = experiment.simulate(**kwargs)
        assert cold.to_json() == warm.to_json()
        # the second call was served from the store: exactly one artifact
        assert len(store.keys()) == 1

    def test_worker_count_not_part_of_identity(self, store, experiment):
        cold = experiment.simulate(
            trials=64, engine="direct", seed=5, chunk_size=16, workers=2, store=store
        )
        warm = experiment.simulate(
            trials=64, engine="direct", seed=5, chunk_size=16, workers=1, store=store
        )
        assert len(store.keys()) == 1
        assert cold.to_json() == warm.to_json()

    def test_store_accepts_directory_path(self, tmp_path, experiment):
        cold = experiment.simulate(trials=30, seed=1, store=tmp_path / "s")
        warm = experiment.simulate(trials=30, seed=1, store=str(tmp_path / "s"))
        assert cold.to_json() == warm.to_json()

    def test_keep_trajectories_incompatible(self, store, experiment):
        with pytest.raises(ExperimentError, match="keep_trajectories"):
            experiment.simulate(trials=10, store=store, keep_trajectories=True)

    def test_payload_replay_matches_local_run(self, store, experiment):
        # compute_payload is the service/campaign compute path: replaying the
        # serialized experiment must reproduce the local run byte for byte.
        local = experiment.simulate(trials=40, engine="batch-direct", seed=2)
        replayed = compute_payload(
            payload_of(experiment, trials=40, engine="batch-direct", seed=2)
        )
        assert replayed.to_json() == local.to_json()

    def test_module_experiment_round_trip(self, store):
        from repro.core.modules import logarithm_module

        experiment = Experiment.from_module(logarithm_module()).program({"x": 16})
        kwargs = dict(trials=8, engine="direct", seed=3, store=store)
        cold = experiment.simulate(**kwargs)
        warm = experiment.simulate(**kwargs)
        assert cold.to_json() == warm.to_json()
        assert warm.output_summary("y") == cold.output_summary("y")


# ---------------------------------------------------------------------------
# artifact round trips
# ---------------------------------------------------------------------------


class TestArtifactRoundTrips:
    def test_run_result_full_round_trip(self, store, experiment):
        cold = experiment.simulate(
            trials=60, engine="batch-direct", seed=9, backend="numpy", store=store
        )
        (key,) = store.keys()
        loaded = store.load_run(key)
        # execution metadata
        assert loaded.engine == "batch-direct"
        assert loaded.backend == "numpy"
        assert loaded.seed == 9 and loaded.trials == 60
        # stop details become outcome labels: preserved exactly
        assert loaded.ensemble.outcome_counts == cold.ensemble.outcome_counts
        assert loaded.frequencies == cold.frequencies
        # decision-time fields survive (final_times / n_firings)
        assert loaded.decision_times() == cold.decision_times()
        assert loaded.distances() == cold.distances()
        assert loaded.to_json() == cold.to_json()

    def test_exact_run_round_trip_with_exact_info(self, store, experiment):
        cold = experiment.simulate(trials=100, engine="fsp", store=store)
        (key,) = store.keys()
        loaded = store.load_run(key)
        assert loaded.exact == cold.exact
        assert loaded.exact_info == cold.exact_info
        assert loaded.exact_info is not None and "truncation_error" in loaded.exact_info
        assert loaded.to_json() == cold.to_json()

    def test_payload_carries_version(self, experiment):
        result = experiment.simulate(trials=10, seed=1)
        payload = result.to_payload()
        assert payload["version"] == repro.__version__
        assert json.loads(result.to_json())["version"] == repro.__version__

    def test_bare_ensemble_round_trip(self, store, race_network):
        runner = EnsembleRunner(
            race_network,
            stopping=SpeciesThreshold("d2", 20),
            options=SimulationOptions(record_firings=False),
        )
        ensemble = runner.run(30, seed=4)
        store.put("ab" * 32, ensemble)
        loaded = store.get("ab" * 32)
        assert loaded.n_trials == ensemble.n_trials
        assert loaded.outcome_counts == ensemble.outcome_counts
        assert loaded.final_counts.tolist() == ensemble.final_counts.tolist()
        assert loaded.final_times.tolist() == ensemble.final_times.tolist()

    def test_fsp_result_round_trip(self, store):
        network = parse_network(
            """
            init: x = 0
            src ->{2} src + x
            x ->{1} 0
            init: src = 1
            """,
            name="birth-death",
        )
        solved = FspEngine(
            network, fsp_options=FspOptions(count_caps={"x": 30}, checkpoints=5)
        ).solve(t_final=2.0)
        store.put("cd" * 32, solved)
        loaded = store.get("cd" * 32)
        assert isinstance(loaded, FspResult)
        assert loaded.times.tolist() == solved.times.tolist()
        assert loaded.probabilities.tolist() == solved.probabilities.tolist()
        assert loaded.marginal("x") == solved.marginal("x")
        assert loaded.mean("x") == solved.mean("x")
        assert loaded.state_probability({"x": 2, "src": 1}) == solved.state_probability(
            {"x": 2, "src": 1}
        )
        assert loaded.error_bound() == solved.error_bound()
        assert loaded.outcome_probabilities() == solved.outcome_probabilities()

    def test_unsupported_result_type_rejected(self, store):
        with pytest.raises(StoreError, match="cannot store"):
            store.put("ef" * 32, {"not": "a result"})


# ---------------------------------------------------------------------------
# store mechanics: index, versioning, eviction
# ---------------------------------------------------------------------------


class TestStoreMechanics:
    def _put_run(self, store, experiment, seed):
        payload = payload_of(experiment, trials=10, seed=seed)
        key = fingerprint_payload(payload)
        store.put(key, compute_payload(payload), descriptor=payload)
        return key

    def test_miss_returns_none(self, store):
        assert store.load_run("aa" * 32) is None
        assert store.get("aa" * 32) is None
        assert not store.has("aa" * 32)

    def test_malformed_key_rejected(self, store):
        with pytest.raises(StoreError, match="malformed"):
            store.has("../../etc/passwd")

    def test_keys_contains_len(self, store, experiment):
        keys = {self._put_run(store, experiment, seed) for seed in (1, 2, 3)}
        assert set(store.keys()) == keys
        assert len(store) == 3
        assert next(iter(sorted(keys))) in store

    def test_envelope_records_schema_version_and_descriptor(self, store, experiment):
        key = self._put_run(store, experiment, seed=1)
        envelope = store.get_envelope(key)
        assert envelope["schema"] == "repro.store.artifact/v1"
        assert envelope["version"] == repro.__version__
        assert envelope["kind"] == "run-result"
        assert envelope["descriptor"]["simulate"]["seed"] == 1
        assert envelope["payload"]["version"] == repro.__version__

    def test_incompatible_artifact_schema_rejected(self, store, experiment):
        key = self._put_run(store, experiment, seed=1)
        path = store._artifact_path(key)
        envelope = json.loads(gzip.decompress(path.read_bytes()))
        envelope["schema"] = "repro.store.artifact/v99"
        envelope["version"] = "9.9.9"
        path.write_bytes(gzip.compress(json.dumps(envelope).encode()))
        # A fresh store instance: the writer's hot tier still holds the
        # (valid) envelope from put(), and tampering on disk must not dodge
        # validation just because a cached copy exists elsewhere.
        reader = ResultStore(store.root)
        with pytest.raises(StoreError, match="9.9.9"):
            reader.get_envelope(key)

    def test_wrong_kind_for_load_run(self, store, race_network):
        runner = EnsembleRunner(race_network, stopping=SpeciesThreshold("d1", 5))
        store.put("aa" * 32, runner.run(5, seed=1))
        with pytest.raises(StoreError, match="run-result"):
            store.load_run("aa" * 32)

    def test_index_self_heals_from_artifact_files(self, store, experiment):
        key = self._put_run(store, experiment, seed=1)
        store._index_path.unlink()
        assert store.load_run(key) is not None
        assert key in store.keys()

    def test_evict(self, store, experiment):
        key = self._put_run(store, experiment, seed=1)
        assert store.evict(key)
        assert not store.has(key)
        assert not store.evict(key)

    def test_gc_by_count_evicts_lru(self, store, experiment):
        keys = [self._put_run(store, experiment, seed=seed) for seed in (1, 2, 3)]
        store.get(keys[0])  # refresh key 0: key 1 becomes the LRU
        evicted = store.gc(max_artifacts=2)
        assert evicted == [keys[1]]
        assert store.has(keys[0]) and store.has(keys[2])

    def test_gc_by_bytes(self, store, experiment):
        for seed in (1, 2, 3):
            self._put_run(store, experiment, seed=seed)
        evicted = store.gc(max_bytes=0)
        assert len(evicted) == 3
        assert store.keys() == []

    def test_standing_limit_applies_on_put(self, tmp_path, experiment):
        store = ResultStore(tmp_path / "bounded", max_artifacts=2)
        for seed in (1, 2, 3, 4):
            self._put_run(store, experiment, seed=seed)
        assert len(store.keys()) == 2

    def test_stats(self, store, experiment):
        self._put_run(store, experiment, seed=1)
        stats = store.stats()
        assert stats["artifacts"] == 1
        assert stats["bytes"] > 0
        assert stats["campaigns"] == 0

    def test_store_is_picklable(self, store):
        import pickle

        clone = pickle.loads(pickle.dumps(store))
        assert clone.root == store.root
        assert clone.keys() == store.keys()


class TestSweepIntegration:
    def test_sweep_with_store_caches_points(self, store):
        from repro.analysis.sweep import ParameterSweep

        def build(gamma):
            return Experiment.from_distribution({"a": 0.5, "b": 0.5}, gamma=gamma)

        sweep = ParameterSweep.over_experiments(
            "gamma", [10.0, 100.0], build, store=store, trials=30, seed=7
        )
        first = sweep.run()
        assert len(store.keys()) == 2
        second = sweep.run()  # all points served from cache
        assert len(store.keys()) == 2
        assert first.rows == second.rows
