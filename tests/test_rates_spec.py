"""Tests for rate ladders and synthesis specifications (repro.core.rates / spec)."""

from __future__ import annotations

import pytest

from repro.core import (
    AffineResponseSpec,
    DistributionSpec,
    OutcomeSpec,
    RateLadder,
    TierScheme,
    quantize_distribution,
)
from repro.core.rates import STOCHASTIC_CATEGORIES
from repro.errors import RateLadderError, SpecificationError


class TestRateLadder:
    def test_equation_1_relationships(self):
        """γ·k = k' = k'' = k'''/γ = γ·k'''' (Equation 1)."""
        ladder = RateLadder(gamma=50.0, base_rate=2.0)
        assert ladder.reinforcing == pytest.approx(ladder.gamma * ladder.initializing)
        assert ladder.stabilizing == pytest.approx(ladder.reinforcing)
        assert ladder.purifying == pytest.approx(ladder.gamma * ladder.reinforcing)
        assert ladder.working == pytest.approx(ladder.initializing)

    def test_paper_example_rates(self):
        """Example 1 uses rates 1 / 10³ / 10⁶."""
        ladder = RateLadder.paper_example()
        assert ladder.initializing == pytest.approx(1.0)
        assert ladder.reinforcing == pytest.approx(1e3)
        assert ladder.purifying == pytest.approx(1e6)

    def test_rate_for_category(self):
        ladder = RateLadder(gamma=10.0)
        for category in STOCHASTIC_CATEGORIES:
            assert ladder.rate_for(category) > 0
        assert ladder.as_dict()["purifying"] == pytest.approx(100.0)

    def test_unknown_category(self):
        with pytest.raises(RateLadderError):
            RateLadder(gamma=10.0).rate_for("mystery")

    @pytest.mark.parametrize("gamma, base", [(0.5, 1.0), (10.0, 0.0), (10.0, -1.0)])
    def test_validation(self, gamma, base):
        with pytest.raises(RateLadderError):
            RateLadder(gamma=gamma, base_rate=base)


class TestTierScheme:
    def test_ordering_is_monotonic(self):
        scheme = TierScheme(separation=10.0, base_rate=1.0)
        rates = [scheme.rate(tier) for tier in TierScheme.TIERS]
        assert rates == sorted(rates)
        assert rates[0] == pytest.approx(1.0)
        assert rates[-1] == pytest.approx(10.0 ** (len(TierScheme.TIERS) - 1))

    def test_shifted(self):
        scheme = TierScheme(separation=10.0, base_rate=1.0)
        shifted = scheme.shifted(2)
        assert shifted.rate("slowest") == pytest.approx(scheme.rate("slow"))

    def test_unknown_tier(self):
        with pytest.raises(RateLadderError):
            TierScheme().rate("hyper")

    def test_validation(self):
        with pytest.raises(RateLadderError):
            TierScheme(separation=1.0)
        with pytest.raises(RateLadderError):
            TierScheme(base_rate=0.0)

    def test_as_dict(self):
        assert set(TierScheme().as_dict()) == set(TierScheme.TIERS)


class TestOutcomeSpec:
    def test_defaults(self):
        spec = OutcomeSpec("win")
        assert spec.output_species == {"o_win": 1}
        assert spec.food_species == "f_win"

    def test_custom_outputs(self):
        spec = OutcomeSpec("L", outputs={"cro2": 2}, food="fuel", target_output=500)
        assert spec.output_species == {"cro2": 2}
        assert spec.food_species == "fuel"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"label": ""},
            {"label": "x", "target_output": 0},
            {"label": "x", "outputs": {"o": 0}},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(SpecificationError):
            OutcomeSpec(**kwargs)


class TestDistributionSpec:
    def test_basic(self, example1_spec):
        assert example1_spec.labels == ("1", "2", "3")
        assert example1_spec.probability_of("2") == pytest.approx(0.4)
        assert example1_spec.as_dict() == {"1": 0.3, "2": 0.4, "3": 0.3}

    def test_from_weights(self):
        spec = DistributionSpec.from_weights({"a": 3, "b": 1})
        assert spec.probability_of("a") == pytest.approx(0.75)

    def test_uniform(self):
        spec = DistributionSpec.uniform(["x", "y", "z", "w"])
        assert spec.probability_of("w") == pytest.approx(0.25)

    def test_initial_quantities_match_example1(self, example1_spec):
        """(0.3, 0.4, 0.3) at scale 100 → E = (30, 40, 30) (Example 1)."""
        assert example1_spec.initial_quantities(100) == {"1": 30, "2": 40, "3": 30}

    def test_initial_quantities_sum_to_scale(self):
        spec = DistributionSpec(["a", "b", "c"], [1 / 3, 1 / 3, 1 / 3])
        quantities = spec.initial_quantities(100)
        assert sum(quantities.values()) == 100

    @pytest.mark.parametrize(
        "labels, probs",
        [
            (["a"], [1.0]),                      # too few outcomes
            (["a", "b"], [0.5]),                  # length mismatch
            (["a", "a"], [0.5, 0.5]),             # duplicate labels
            (["a", "b"], [0.7, 0.7]),             # doesn't sum to 1
            (["a", "b"], [-0.1, 1.1]),            # negative
        ],
    )
    def test_validation(self, labels, probs):
        with pytest.raises(SpecificationError):
            DistributionSpec(labels, probs)

    def test_unknown_label_lookup(self, example1_spec):
        with pytest.raises(SpecificationError):
            example1_spec.probability_of("nope")


class TestQuantize:
    def test_rounds_to_scale(self):
        assert sum(quantize_distribution([0.301, 0.4, 0.299], 100)) == 100

    def test_largest_remainder(self):
        assert quantize_distribution([0.305, 0.390, 0.305], 100) == [31, 39, 30]

    def test_small_probability_keeps_a_molecule(self):
        counts = quantize_distribution([0.004, 0.996], 100)
        assert counts[0] >= 1
        assert sum(counts) == 100

    def test_zero_probability_gets_zero(self):
        assert quantize_distribution([0.0, 1.0], 50) == [0, 50]

    def test_invalid_scale(self):
        with pytest.raises(SpecificationError):
            quantize_distribution([0.5, 0.5], 0)


class TestAffineResponseSpec:
    def make_example2(self) -> AffineResponseSpec:
        return AffineResponseSpec(
            base={"1": 0.3, "2": 0.4, "3": 0.3},
            slopes={"1": {"x1": 0.02, "x2": -0.03}, "2": {"x2": 0.03}, "3": {"x1": -0.02}},
        )

    def test_example2_evaluation(self):
        spec = self.make_example2()
        result = spec.evaluate({"x1": 5, "x2": 0})
        assert result["1"] == pytest.approx(0.4)
        assert result["3"] == pytest.approx(0.2)

    def test_evaluation_with_both_inputs(self):
        spec = self.make_example2()
        result = spec.evaluate({"x1": 5, "x2": 4})
        assert result["1"] == pytest.approx(0.3 + 0.1 - 0.12)
        assert result["2"] == pytest.approx(0.4 + 0.12)
        assert result["3"] == pytest.approx(0.3 - 0.1)

    def test_evaluation_clips_and_renormalizes(self):
        spec = self.make_example2()
        result = spec.evaluate({"x1": 100, "x2": 0})    # would push p3 below 0
        assert result["3"] == 0.0
        assert sum(result.values()) == pytest.approx(1.0)

    def test_input_names(self):
        assert self.make_example2().input_names == ("x1", "x2")

    def test_slope_as_fraction(self):
        spec = self.make_example2()
        assert spec.slope_as_fraction("1", "x1", 100) == 2
        assert spec.slope_as_fraction("2", "x2", 100) == 3

    def test_base_must_sum_to_one(self):
        with pytest.raises(SpecificationError):
            AffineResponseSpec(base={"a": 0.5, "b": 0.6}, slopes={})

    def test_slopes_must_conserve_probability(self):
        with pytest.raises(SpecificationError):
            AffineResponseSpec(
                base={"a": 0.5, "b": 0.5}, slopes={"a": {"x": 0.1}}  # nothing balances +0.1
            )

    def test_slopes_for_unknown_outcome_rejected(self):
        with pytest.raises(SpecificationError):
            AffineResponseSpec(base={"a": 0.5, "b": 0.5}, slopes={"zz": {"x": 0.0}})
