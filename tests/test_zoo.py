"""The model zoo, the conformance corpus registry, and the random generator."""

from __future__ import annotations

import pytest

from repro.api import Experiment
from repro.cli import main
from repro.crn import (
    GeneratorConfig,
    check_network,
    generate_model,
    generate_network,
    network_to_json,
)
from repro.errors import ModelSchemaError
from repro.sim import CompiledNetwork
from repro.zoo import load_all, load_model, models_dir, zoo_names
from repro.zoo.corpus import (
    GENERATED_PRESETS,
    CorpusEntry,
    corpus_entries,
    corpus_names,
    trial_budget,
)

EXPECTED_ZOO = {
    "birth-death", "toggle-switch", "triple-race", "stiff-cascade",
    "polya-urn", "dimerization", "cross-catalysis", "lambda-decision",
    "lambda-moi2", "brusselator",
}


# ---------------------------------------------------------------------------
# zoo loading
# ---------------------------------------------------------------------------


def test_zoo_directory_holds_the_curated_models():
    assert models_dir().is_dir()
    assert EXPECTED_ZOO <= set(zoo_names())


def test_every_zoo_model_loads_and_validates():
    for name, model in load_all().items():
        assert model.name == name, "file stem must match the document name"
        check_network(model.network())  # raises on structural problems


def test_load_model_unknown_name_lists_alternatives():
    with pytest.raises(ModelSchemaError) as excinfo:
        load_model("does-not-exist")
    assert "polya-urn" in str(excinfo.value)


def test_models_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_MODELS_DIR", str(tmp_path))
    assert models_dir() == tmp_path
    assert zoo_names() == []


def test_experiment_from_zoo():
    experiment = Experiment.from_zoo("polya-urn")
    assert experiment.label == "polya-urn"
    exact = experiment.simulate(engine="fsp").exact
    assert exact["first"] == pytest.approx(0.5, abs=1e-9)
    assert exact["second"] == pytest.approx(0.5, abs=1e-9)


def test_brusselator_is_sampling_only():
    model = load_model("brusselator")
    assert model.conformance.enroll is False
    assert model.conformance.fsp_tractable is False
    assert model.name not in corpus_names()


# ---------------------------------------------------------------------------
# corpus registry
# ---------------------------------------------------------------------------


def test_corpus_combines_zoo_and_presets():
    entries = corpus_entries()
    assert all(isinstance(entry, CorpusEntry) for entry in entries)
    zoo_entries = [e for e in entries if e.source == "zoo"]
    generated = [e for e in entries if e.source == "generated"]
    assert len(zoo_entries) >= 5
    assert len(generated) == len(GENERATED_PRESETS)
    assert all(entry.model.conformance.enroll for entry in entries)
    assert len(entries) >= 8


def test_trial_budget_derivation():
    assert trial_budget({"a": 0.5, "b": 0.5}) == 200          # floor
    assert trial_budget({"a": 0.96, "b": 0.04}) == 250        # 10 / 0.04
    assert trial_budget({"a": 0.999, "b": 0.001}) == 800      # capped
    assert trial_budget({"a": 1.0, "b": 0.0}) == 200          # zeros ignored
    assert trial_budget({}) == 200


# ---------------------------------------------------------------------------
# generator seed determinism
# ---------------------------------------------------------------------------


def test_generator_same_seed_identical_compiled_network():
    config = GeneratorConfig(n_outcomes=3, chain_length=2, cross_edges=2,
                             catalytic_edges=1, scale=18, stiffness=2.0)
    first = generate_network(config, seed=77)
    second = generate_network(config, seed=77)
    assert first == second
    assert network_to_json(first) == network_to_json(second)
    compiled_a = CompiledNetwork.compile(first)
    compiled_b = CompiledNetwork.compile(second)
    assert [s.name for s in compiled_a.species] == [s.name for s in compiled_b.species]
    assert list(compiled_a.rates) == list(compiled_b.rates)
    assert [list(c) for c in compiled_a.change_species] == [
        list(c) for c in compiled_b.change_species
    ]
    assert [list(c) for c in compiled_a.change_deltas] == [
        list(c) for c in compiled_b.change_deltas
    ]


def test_generator_distinct_seeds_differ_structurally():
    config = GeneratorConfig(n_outcomes=3, chain_length=2, cross_edges=2,
                             catalytic_edges=1, scale=18, stiffness=2.0)
    networks = [generate_network(config, seed=seed) for seed in range(5)]
    serialized = {network_to_json(network) for network in networks}
    assert len(serialized) == len(networks), "distinct seeds collapsed"
    # Difference is structural (wiring/rates), not just a renamed copy:
    # at least one pair differs in its reaction set.
    reaction_sets = {
        tuple(sorted(str(r) for r in network.reactions)) for network in networks
    }
    assert len(reaction_sets) > 1


def test_generated_presets_are_tractable_and_decided():
    for config, seed in GENERATED_PRESETS:
        model = generate_model(config, seed)
        result = model.experiment().simulate(
            engine="fsp", engine_options=model.fsp_options()
        )
        exact = dict(result.exact)
        assert exact.pop("(undecided)", 0.0) == pytest.approx(0.0, abs=1e-9)
        assert set(exact) == {o.label for o in model.outcomes}
        assert min(exact.values()) >= 0.05, (model.name, exact)


# ---------------------------------------------------------------------------
# CLI smoke
# ---------------------------------------------------------------------------


def test_cli_models_table(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    assert "polya-urn" in out
    assert "generated" in out
    assert "brusselator" in out


def test_cli_models_show(capsys):
    assert main(["models", "--show", "birth-death"]) == 0
    out = capsys.readouterr().out
    assert "schema: repro.model/v1" in out
    assert "birth" in out


def test_cli_models_show_unknown_is_an_error(capsys):
    assert main(["models", "--show", "nope"]) == 1
    assert "unknown zoo model" in capsys.readouterr().err


def test_cli_models_validate(capsys):
    assert main(["models", "--validate"]) == 0
    out = capsys.readouterr().out
    assert "all models valid" in out
    assert "FAIL" not in out


def test_cli_models_validate_catches_broken_documents(tmp_path, monkeypatch, capsys):
    (tmp_path / "broken.yaml").write_text(
        "schema: repro.model/v1\nname: broken\nreactions: []\n"
    )
    monkeypatch.setenv("REPRO_MODELS_DIR", str(tmp_path))
    assert main(["models", "--validate"]) == 1
    assert "FAIL" in capsys.readouterr().out
