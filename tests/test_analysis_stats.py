"""Tests for empirical statistics and distribution distances (repro.analysis)."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    EmpiricalDistribution,
    hellinger,
    jensen_shannon,
    kl_divergence,
    normalize,
    total_variation,
    wilson_interval,
)
from repro.errors import AnalysisError


class TestWilsonInterval:
    def test_point_estimate(self):
        estimate = wilson_interval(30, 100)
        assert estimate.estimate == pytest.approx(0.3)
        assert estimate.low < 0.3 < estimate.high
        assert estimate.percent == pytest.approx(30.0)

    def test_interval_shrinks_with_trials(self):
        narrow = wilson_interval(300, 1000)
        wide = wilson_interval(30, 100)
        assert narrow.half_width < wide.half_width

    def test_zero_successes_has_positive_upper_bound(self):
        estimate = wilson_interval(0, 50)
        assert estimate.low == pytest.approx(0.0, abs=1e-9)
        assert 0 < estimate.high < 0.15

    def test_all_successes(self):
        estimate = wilson_interval(50, 50)
        assert estimate.high == 1.0
        assert estimate.low > 0.9

    def test_confidence_level_widens_interval(self):
        assert (
            wilson_interval(30, 100, confidence=0.99).half_width
            > wilson_interval(30, 100, confidence=0.9).half_width
        )

    @pytest.mark.parametrize("successes, trials", [(-1, 10), (11, 10), (0, 0)])
    def test_validation(self, successes, trials):
        with pytest.raises(AnalysisError):
            wilson_interval(successes, trials)

    def test_str(self):
        assert "30/100" in str(wilson_interval(30, 100))


class TestEmpiricalDistribution:
    def test_frequencies(self):
        distribution = EmpiricalDistribution({"a": 30, "b": 70})
        assert distribution.frequency("a") == pytest.approx(0.3)
        assert distribution.frequencies() == {"a": 0.3, "b": 0.7}
        assert distribution.total == 100

    def test_from_labels(self):
        distribution = EmpiricalDistribution.from_labels(["x", "y", "x", "x"])
        assert distribution.count("x") == 3
        assert distribution.labels == ("x", "y")

    def test_interval(self):
        distribution = EmpiricalDistribution({"a": 30, "b": 70})
        assert distribution.interval("a").estimate == pytest.approx(0.3)

    def test_tv_against_target(self):
        distribution = EmpiricalDistribution({"a": 30, "b": 70})
        assert distribution.total_variation_distance({"a": 0.3, "b": 0.7}) == pytest.approx(0.0)
        assert distribution.total_variation_distance({"a": 0.5, "b": 0.5}) == pytest.approx(0.2)

    def test_chi_square_consistent_data(self):
        distribution = EmpiricalDistribution({"a": 298, "b": 702})
        statistic, pvalue = distribution.chi_square_test({"a": 0.3, "b": 0.7})
        assert pvalue > 0.5

    def test_chi_square_inconsistent_data(self):
        distribution = EmpiricalDistribution({"a": 500, "b": 500})
        _, pvalue = distribution.chi_square_test({"a": 0.3, "b": 0.7})
        assert pvalue < 1e-6

    def test_summary_table(self):
        text = EmpiricalDistribution({"a": 1, "b": 3}).summary(target={"a": 0.25, "b": 0.75})
        assert "a" in text and "target" in text

    def test_validation(self):
        with pytest.raises(AnalysisError):
            EmpiricalDistribution({})
        with pytest.raises(AnalysisError):
            EmpiricalDistribution({"a": -1})


class TestDistances:
    def test_normalize(self):
        assert normalize({"a": 2, "b": 2}) == {"a": 0.5, "b": 0.5}

    def test_normalize_validation(self):
        with pytest.raises(AnalysisError):
            normalize({})
        with pytest.raises(AnalysisError):
            normalize({"a": 0.0})
        with pytest.raises(AnalysisError):
            normalize({"a": -1.0, "b": 2.0})

    def test_total_variation_identity(self):
        p = {"a": 0.3, "b": 0.7}
        assert total_variation(p, p) == pytest.approx(0.0)

    def test_total_variation_disjoint(self):
        assert total_variation({"a": 1.0}, {"b": 1.0}) == pytest.approx(1.0)

    def test_total_variation_symmetry(self):
        p, q = {"a": 0.2, "b": 0.8}, {"a": 0.6, "b": 0.4}
        assert total_variation(p, q) == pytest.approx(total_variation(q, p))

    def test_kl_divergence_zero_on_identical(self):
        p = {"a": 0.4, "b": 0.6}
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_kl_divergence_infinite_on_missing_support(self):
        assert math.isinf(kl_divergence({"a": 0.5, "b": 0.5}, {"a": 1.0}))

    def test_kl_known_value(self):
        value = kl_divergence({"a": 1.0, "b": 0.0}, {"a": 0.5, "b": 0.5})
        assert value == pytest.approx(math.log(2))

    def test_jensen_shannon_bounded_and_symmetric(self):
        p, q = {"a": 0.9, "b": 0.1}, {"a": 0.1, "b": 0.9}
        js = jensen_shannon(p, q)
        assert 0 <= js <= math.log(2) + 1e-12
        assert js == pytest.approx(jensen_shannon(q, p))

    def test_hellinger_range(self):
        assert hellinger({"a": 1.0}, {"b": 1.0}) == pytest.approx(1.0)
        assert hellinger({"a": 0.5, "b": 0.5}, {"a": 0.5, "b": 0.5}) == pytest.approx(0.0)

    def test_unnormalized_inputs_accepted(self):
        assert total_variation({"a": 3, "b": 7}, {"a": 0.3, "b": 0.7}) == pytest.approx(0.0)
