"""Determinism regressions: a fixed seed pins every engine bit-for-bit.

Reproducibility is a correctness contract here, not a convenience: the
conformance suite's chi-squared thresholds, the archived benchmark reports
and the JSON result round trips all assume that ``(engine, seed, trials)``
fully determines a run.  These tests re-run each engine with the same seed
and require *identical* results — outcome counts, final-count matrices,
stopping times — including the batched engine under multiprocess sharding,
whose chunk-keyed sub-seeding makes results invariant to the worker count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Experiment
from repro.crn import parse_network
from repro.sim import OutcomeThresholds
from repro.sim.registry import registry


def stochastic_engines() -> list[str]:
    return [name for name in registry.names() if not registry.get(name).deterministic]


@pytest.fixture(scope="module")
def race_experiment():
    network = parse_network(
        """
        init: e1 = 30
        init: e2 = 40
        init: e3 = 30
        e1 ->{1} d1
        e2 ->{1} d2
        e3 ->{1} d3
        """,
        name="race-to-3",
    )
    stopping = OutcomeThresholds({"1": ("d1", 3), "2": ("d2", 3), "3": ("d3", 3)})
    return Experiment.from_network(network, stopping=stopping)


def assert_identical_ensembles(first, second):
    """Two RunResults must agree bit-for-bit on every recorded quantity."""
    assert first.ensemble.outcome_counts == second.ensemble.outcome_counts
    assert np.array_equal(first.ensemble.final_counts, second.ensemble.final_counts)
    assert np.array_equal(first.ensemble.final_times, second.ensemble.final_times)
    assert np.array_equal(first.ensemble.n_firings, second.ensemble.n_firings)


@pytest.mark.parametrize("engine", stochastic_engines())
def test_same_seed_is_bit_identical(engine, race_experiment):
    first = race_experiment.simulate(trials=120, engine=engine, seed=97)
    second = race_experiment.simulate(trials=120, engine=engine, seed=97)
    assert_identical_ensembles(first, second)
    assert first.to_json() == second.to_json()


@pytest.mark.parametrize("engine", stochastic_engines())
def test_different_seeds_differ(engine, race_experiment):
    """Guard against a seed being silently ignored."""
    first = race_experiment.simulate(trials=120, engine=engine, seed=97)
    second = race_experiment.simulate(trials=120, engine=engine, seed=98)
    assert not np.array_equal(first.ensemble.final_times, second.ensemble.final_times)


def test_batch_direct_worker_count_invariance(race_experiment):
    """batch-direct with 2 workers matches 1 worker exactly (chunk-keyed seeds)."""
    single = race_experiment.simulate(
        trials=256, engine="batch-direct", seed=5, workers=1, chunk_size=64
    )
    sharded = race_experiment.simulate(
        trials=256, engine="batch-direct", seed=5, workers=2, chunk_size=64
    )
    assert_identical_ensembles(single, sharded)


def test_per_trial_engine_worker_count_invariance(race_experiment):
    """Per-trial engines key each trial's stream by its global index."""
    single = race_experiment.simulate(
        trials=150, engine="direct", seed=5, workers=1, chunk_size=50
    )
    sharded = race_experiment.simulate(
        trials=150, engine="direct", seed=5, workers=2, chunk_size=50
    )
    assert_identical_ensembles(single, sharded)


def test_exact_engine_is_seed_free(race_experiment):
    """The fsp engine computes the same distribution regardless of seed."""
    experiment = race_experiment.classify_states(_FirstCatalyst())
    first = experiment.simulate(engine="fsp", seed=1)
    second = experiment.simulate(engine="fsp", seed=2)
    assert first.exact == second.exact
    assert first.to_json() == second.to_json()


class _FirstCatalyst:
    def __call__(self, state):
        for label, marker in (("1", "d1"), ("2", "d2"), ("3", "d3")):
            if state.get(marker, 0) >= 3:
                return label
        return None
