"""Tests for the stochastic module generator (Section 2.1)."""

from __future__ import annotations

import pytest

from repro.core import (
    DistributionSpec,
    OutcomeSpec,
    RateLadder,
    build_stochastic_module,
    expected_first_firing_distribution,
    stochastic_module_quantities,
)
from repro.core.rates import STOCHASTIC_CATEGORIES
from repro.core.stochastic_module import StochasticModuleLayout
from repro.crn import check_network
from repro.errors import SpecificationError


class TestStructure:
    def test_reaction_census_three_outcomes(self, example1_network):
        """3 outcomes → 3 init + 3 reinforce + 3 work + 6 stabilize + 3 purify = 18."""
        categories = {c: len(example1_network.reactions_in_category(c)) for c in
                      STOCHASTIC_CATEGORIES}
        assert categories == {
            "initializing": 3,
            "reinforcing": 3,
            "working": 3,
            "stabilizing": 6,
            "purifying": 3,
        }
        assert example1_network.size == 18

    def test_reaction_census_two_outcomes(self, tiny_two_outcome_network):
        """2 outcomes → 2 + 2 + 2 + 2 + 1 = 9 reactions."""
        assert tiny_two_outcome_network.size == 9
        assert len(tiny_two_outcome_network.reactions_in_category("purifying")) == 1

    def test_all_categories_present(self, example1_network):
        check_network(example1_network, expected_categories=STOCHASTIC_CATEGORIES)

    def test_initial_quantities_match_example1(self, example1_network):
        """E1 = 30, E2 = 40, E3 = 30 as in Example 1."""
        assert example1_network.initial_count("e_1") == 30
        assert example1_network.initial_count("e_2") == 40
        assert example1_network.initial_count("e_3") == 30

    def test_rates_follow_equation_1(self, example1_spec):
        gamma = 250.0
        net = build_stochastic_module(example1_spec, gamma=gamma, base_rate=2.0)
        ladder = RateLadder(gamma=gamma, base_rate=2.0)
        for category in STOCHASTIC_CATEGORIES:
            for _, reaction in net.reactions_in_category(category):
                assert reaction.rate == pytest.approx(ladder.rate_for(category))

    def test_reaction_shapes(self, example1_network):
        """Each category has the stoichiometric shape defined in Section 2.1.1."""
        for _, r in example1_network.reactions_in_category("initializing"):
            assert r.order == 1 and len(r.products) == 1
        for _, r in example1_network.reactions_in_category("reinforcing"):
            assert r.order == 2 and sum(r.products.values()) == 2
        for _, r in example1_network.reactions_in_category("stabilizing"):
            assert r.order == 2 and sum(r.products.values()) == 1
        for _, r in example1_network.reactions_in_category("purifying"):
            assert r.order == 2 and not r.products
        for _, r in example1_network.reactions_in_category("working"):
            assert any(r.is_catalytic_in(s) for s in r.reactants)

    def test_food_initialized_to_target_output(self):
        spec = DistributionSpec(
            [OutcomeSpec("a", target_output=77), OutcomeSpec("b", target_output=33)],
            [0.5, 0.5],
        )
        net = build_stochastic_module(spec)
        assert net.initial_count("f_a") == 77
        assert net.initial_count("f_b") == 33

    def test_custom_outputs_in_working_reaction(self):
        spec = DistributionSpec(
            [OutcomeSpec("lys", outputs={"cro2": 1}), OutcomeSpec("lysg", outputs={"ci2": 2})],
            [0.5, 0.5],
        )
        net = build_stochastic_module(spec)
        working = dict(net.reactions_in_category("working"))
        products = [set(r.products) for r in working.values()]
        names = {s.name for group in products for s in group}
        assert {"cro2", "ci2"} <= names

    def test_custom_layout(self, example1_spec):
        layout = StochasticModuleLayout(input_prefix="e", catalyst_prefix="d")
        net = build_stochastic_module(example1_spec, layout=layout)
        assert net.has_species("e1") and net.has_species("d2")

    def test_metadata_records_design(self, example1_network):
        meta = example1_network.metadata
        assert meta["kind"] == "stochastic-module"
        assert meta["gamma"] == pytest.approx(1e3)
        assert set(meta["outcomes"]) == {"1", "2", "3"}


class TestQuantities:
    def test_programmed_distribution_formula(self):
        """p_i = E_i k_i / Σ E_j k_j (Section 2.1.2)."""
        distribution = expected_first_firing_distribution({"a": 30, "b": 40, "c": 30})
        assert distribution == {"a": 0.3, "b": 0.4, "c": 0.3}

    def test_formula_with_unequal_rates(self):
        distribution = expected_first_firing_distribution(
            {"a": 10, "b": 10}, rates={"a": 3.0, "b": 1.0}
        )
        assert distribution["a"] == pytest.approx(0.75)

    def test_formula_rejects_all_zero(self):
        with pytest.raises(SpecificationError):
            expected_first_firing_distribution({"a": 0, "b": 0})

    def test_quantities_compensate_unequal_rates(self, example1_spec):
        """With k_1 doubled, E_1 is halved so the distribution is unchanged."""
        quantities = stochastic_module_quantities(
            example1_spec, scale=100, rates={"1": 2.0, "2": 1.0, "3": 1.0}
        )
        realized = expected_first_firing_distribution(
            quantities, rates={"1": 2.0, "2": 1.0, "3": 1.0}
        )
        assert realized["1"] == pytest.approx(0.3, abs=0.02)
        assert realized["2"] == pytest.approx(0.4, abs=0.02)

    def test_quantities_sum_to_scale(self, example1_spec):
        assert sum(stochastic_module_quantities(example1_spec, scale=250).values()) == 250
