"""Importance splitting: deep-tail estimates cross-validated against FSP.

The acceptance contract for the rare-event estimator: on the ``rare-race``
zoo model — whose rare outcome has exact probability ``~3.1e-7``, far below
anything a fixed Monte-Carlo budget can resolve — the multilevel splitting
estimate must agree with the FSP exact oracle *within its own reported
confidence interval*.  The rest of the file pins the estimator's
determinism, its level-schedule resolution, the threshold lookup that turns
a declared outcome into a score function, and the extinction / error paths.
"""

from __future__ import annotations

import pytest

from repro.adaptive import (
    AdaptiveResult,
    SplittingConfig,
    resolve_outcome_threshold,
    run_splitting,
)
from repro.adaptive.splitting import LEVEL_LABEL, SplittingEstimate
from repro.api import Experiment
from repro.crn import parse_network
from repro.errors import AdaptiveError
from repro.sim import OutcomeThresholds
from repro.sim.events import AnyCondition, SpeciesThreshold
from repro.sim.fsp import ThresholdStateClassifier
from repro.store import ResultStore, experiment_to_payload
from repro.store.fingerprint import canonical_json
from repro.store.serialize import compute_payload
from repro.zoo import load_model


@pytest.fixture(scope="module")
def rare_race():
    return load_model("rare-race")


@pytest.fixture(scope="module")
def rare_exact(rare_race) -> float:
    """The FSP oracle's exact deep-tail probability (~3.12e-7)."""
    result = rare_race.experiment().simulate(
        engine="fsp", engine_options=rare_race.fsp_options()
    )
    return float(result.exact["rare"])


@pytest.fixture(scope="module")
def splitting_result(rare_race):
    config = SplittingConfig(outcome="rare", trials_per_level=400)
    return rare_race.experiment().simulate(until=config, seed=11, engine="direct")


class TestOracleAgreement:
    """The PR's acceptance criterion, asserted end to end."""

    def test_tail_is_genuinely_deep(self, rare_exact):
        assert 0.0 < rare_exact <= 1e-6

    def test_estimate_covers_the_exact_probability(self, splitting_result, rare_exact):
        low, high = splitting_result.rare_interval
        assert low <= rare_exact <= high

    def test_estimate_is_the_right_magnitude(self, splitting_result, rare_exact):
        estimate = splitting_result.rare_probability
        assert rare_exact / 10 <= estimate <= rare_exact * 10

    def test_cost_is_far_below_the_naive_budget(self, splitting_result, rare_exact):
        # Seeing the event once by naive sampling costs ~1/p trials; the
        # splitting run resolves it in a few thousand.
        assert splitting_result.trials < 1e-2 / rare_exact

    def test_result_shape(self, splitting_result):
        assert isinstance(splitting_result, AdaptiveResult)
        info = splitting_result.adaptive
        assert info.rule == "splitting"
        assert info.met and info.detail == "estimated"
        # Default levels: one integer step per rare conversion, 1..8.
        assert info.rare["levels"] == list(range(1, 9))
        assert info.rare["species"] == "b"
        assert info.rare["threshold"] == 8
        stages = len(info.rare["stage_probabilities"])
        assert stages == 8
        assert splitting_result.trials == 400 * stages
        assert info.chunks == info.rounds == stages

    def test_summary_reports_the_estimate(self, splitting_result):
        summary = splitting_result.summary()
        assert "Importance splitting" in summary
        assert "stage p" in summary


class TestDeterminism:
    def test_same_seed_is_bit_identical(self, rare_race):
        config = SplittingConfig(outcome="rare", trials_per_level=100)
        experiment = rare_race.experiment()
        first = experiment.simulate(until=config, seed=23, engine="direct")
        second = experiment.simulate(until=config, seed=23, engine="direct")
        assert first.to_json() == second.to_json()

    def test_other_seeds_still_estimate(self, rare_race):
        config = SplittingConfig(outcome="rare", trials_per_level=100)
        result = rare_race.experiment().simulate(until=config, seed=51, engine="direct")
        assert result.rare_probability > 0.0


class TestStoreAndWire:
    def test_warm_hit_is_bit_identical(self, tmp_path, rare_race):
        config = SplittingConfig(outcome="rare", trials_per_level=100)
        experiment = rare_race.experiment()
        store = ResultStore(tmp_path / "store")
        cold = experiment.simulate(until=config, seed=23, engine="direct", store=store)
        warm = experiment.simulate(until=config, seed=23, engine="direct", store=store)
        assert isinstance(warm, AdaptiveResult)
        assert canonical_json(warm.to_payload()) == canonical_json(cold.to_payload())
        assert store.stats()["artifacts"] == 1

    def test_untrusted_wire_payload_recomputes_identically(self, rare_race):
        # The splitting descriptor is fully declarative, so the service's
        # trusted=False path must rebuild and run it.
        config = SplittingConfig(outcome="rare", trials_per_level=100)
        experiment = rare_race.experiment()
        local = experiment.simulate(until=config, seed=23, engine="direct")
        payload = experiment_to_payload(
            experiment, trials=100, engine="direct", seed=23, until=config
        )
        remote = compute_payload(payload, trusted=False)
        assert isinstance(remote, AdaptiveResult)
        assert canonical_json(remote.to_payload()) == canonical_json(
            {**local.to_payload(), "workers": remote.workers}
        )


class TestSplittingConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(outcome="", trials_per_level=10),
            dict(outcome="rare", trials_per_level=1),
            dict(outcome="rare", confidence=1.0),
            dict(outcome="rare", levels=(3, 2)),
            dict(outcome="rare", levels=()),
            dict(outcome="rare", levels=(1, 2), n_levels=2),
            dict(outcome="rare", n_levels=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(AdaptiveError):
            SplittingConfig(**kwargs)

    def test_default_levels_are_integer_steps(self):
        config = SplittingConfig(outcome="rare")
        assert config.resolved_levels(0, 5) == [1, 2, 3, 4, 5]
        assert config.resolved_levels(2, 5) == [3, 4, 5]

    def test_n_levels_subsamples_and_ends_at_threshold(self):
        config = SplittingConfig(outcome="rare", n_levels=3)
        levels = config.resolved_levels(0, 9)
        assert len(levels) == 3
        assert levels == sorted(levels)
        assert levels[-1] == 9
        # More requested levels than integer steps degrades to every step.
        many = SplittingConfig(outcome="rare", n_levels=50)
        assert many.resolved_levels(0, 4) == [1, 2, 3, 4]

    def test_explicit_levels_must_end_at_threshold(self):
        config = SplittingConfig(outcome="rare", levels=(2, 4, 6))
        assert config.resolved_levels(0, 6) == [2, 4, 6]
        with pytest.raises(AdaptiveError, match="exactly the outcome threshold"):
            config.resolved_levels(0, 8)
        with pytest.raises(AdaptiveError, match="initial score"):
            config.resolved_levels(2, 6)

    def test_already_satisfied_outcome_is_not_rare(self):
        config = SplittingConfig(outcome="rare")
        with pytest.raises(AdaptiveError, match="not a rare event"):
            config.resolved_levels(5, 3)


class TestResolveOutcomeThreshold:
    def test_from_outcome_thresholds(self):
        stopping = OutcomeThresholds({"a-wins": ("a", 7), "b-wins": ("b", 8)})
        assert resolve_outcome_threshold("b-wins", stopping) == ("b", 8)

    def test_from_labelled_species_threshold_inside_any(self):
        stopping = AnyCondition(
            [
                SpeciesThreshold("a", 7, ">=", label="common"),
                SpeciesThreshold("b", 8, ">=", label="rare"),
            ]
        )
        assert resolve_outcome_threshold("rare", stopping) == ("b", 8)

    def test_from_state_classifier(self):
        classifier = ThresholdStateClassifier({"rare": ("b", 8, ">=")})
        assert resolve_outcome_threshold("rare", None, classifier) == ("b", 8)

    def test_decreasing_outcomes_rejected(self):
        stopping = SpeciesThreshold("b", 0, "<=", label="extinct")
        with pytest.raises(AdaptiveError, match="increasing '>=' score"):
            resolve_outcome_threshold("extinct", stopping)

    def test_unknown_outcome_lists_declared_labels(self):
        stopping = OutcomeThresholds({"common": ("a", 7), "rare": ("b", 8)})
        with pytest.raises(AdaptiveError, match=r"common.*rare"):
            resolve_outcome_threshold("nope", stopping)


class TestExtinction:
    def test_unreachable_outcome_reports_extinct(self):
        # Only two precursors exist, so b can never reach 3: the stage at
        # the unreachable level goes extinct and the estimate is zero.
        network = parse_network(
            """
            init: s = 2
            s ->{1} a
            s ->{1} b
            """,
            name="too-small",
        )
        stopping = OutcomeThresholds({"common": ("a", 2), "rare": ("b", 3)})
        experiment = Experiment.from_network(network, stopping=stopping)
        config = SplittingConfig(outcome="rare", trials_per_level=50)
        result = experiment.simulate(until=config, seed=9, engine="direct")
        assert result.rare_probability == 0.0
        assert result.rare_interval == (0.0, 0.0)
        assert not result.met
        assert result.adaptive.detail == "extinct"
        probabilities = result.adaptive.rare["stage_probabilities"]
        assert probabilities[-1] == 0.0


class TestRunSplittingDirectly:
    def test_estimate_fields_are_consistent(self, rare_race):
        experiment = rare_race.experiment()
        network, stopping, _classifier = experiment._resolved()
        estimate = run_splitting(
            network,
            config=SplittingConfig(outcome="rare", trials_per_level=64),
            species="b",
            threshold=8,
            stopping=stopping,
            seed=3,
        )
        assert isinstance(estimate, SplittingEstimate)
        assert estimate.total_trials == 64 * len(estimate.stage_probabilities)
        product = 1.0
        for p in estimate.stage_probabilities:
            product *= p
        assert estimate.estimate == pytest.approx(product)
        if estimate.estimate > 0:
            assert estimate.ci_low < estimate.estimate < estimate.ci_high
            assert estimate.covers(estimate.estimate)
        payload = estimate.rare_payload()
        assert payload["outcome"] == "rare"
        assert canonical_json(payload)

    def test_level_label_is_reserved_for_stages(self):
        assert LEVEL_LABEL == "(level)"
