"""Tests for mass-action propensity evaluation and network compilation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crn import Reaction, ReactionNetwork, State, parse_network
from repro.errors import PropensityError
from repro.sim import CompiledNetwork, combinations, reaction_propensity


class TestCombinations:
    @pytest.mark.parametrize(
        "count, needed, expected",
        [
            (0, 0, 1),
            (5, 0, 1),
            (5, 1, 5),
            (5, 2, 10),
            (2, 2, 1),
            (1, 2, 0),
            (0, 1, 0),
            (10, 3, 120),
        ],
    )
    def test_values(self, count, needed, expected):
        assert combinations(count, needed) == expected

    def test_negative_needed_rejected(self):
        with pytest.raises(PropensityError):
            combinations(3, -1)


class TestReactionPropensity:
    def test_unimolecular(self):
        r = Reaction({"a": 1}, {"b": 1}, rate=2.0)
        assert reaction_propensity(r, State({"a": 7})) == pytest.approx(14.0)

    def test_bimolecular_distinct(self):
        r = Reaction({"a": 1, "b": 1}, {"c": 1}, rate=0.5)
        assert reaction_propensity(r, State({"a": 4, "b": 3})) == pytest.approx(6.0)

    def test_bimolecular_identical(self):
        # 2x -> y: h = x(x-1)/2
        r = Reaction({"x": 2}, {"y": 1}, rate=1.0)
        assert reaction_propensity(r, State({"x": 5})) == pytest.approx(10.0)

    def test_zero_when_insufficient(self):
        r = Reaction({"x": 2}, {"y": 1}, rate=1.0)
        assert reaction_propensity(r, State({"x": 1})) == 0.0

    def test_source_reaction_constant(self):
        r = Reaction({}, {"x": 1}, rate=3.0)
        assert reaction_propensity(r, State()) == pytest.approx(3.0)


class TestCompiledNetwork:
    def test_compile_empty_rejected(self):
        with pytest.raises(PropensityError):
            CompiledNetwork.compile(ReactionNetwork())

    def test_initial_counts_and_roundtrip(self, race_network):
        compiled = CompiledNetwork.compile(race_network)
        counts = compiled.initial_counts()
        state = compiled.counts_to_state(counts)
        assert state == race_network.initial_state

    def test_propensities_match_reference(self, example1_network):
        compiled = CompiledNetwork.compile(example1_network)
        counts = compiled.initial_counts()
        state = compiled.counts_to_state(counts)
        reference = np.array(
            [reaction_propensity(r, state) for r in example1_network.reactions]
        )
        np.testing.assert_allclose(compiled.all_propensities(counts), reference)

    def test_apply_matches_state_apply(self, example1_network):
        compiled = CompiledNetwork.compile(example1_network)
        counts = compiled.initial_counts()
        compiled.apply(0, counts)
        expected = example1_network.initial_state
        expected.apply(example1_network.reaction(0))
        assert compiled.counts_to_state(counts) == expected

    def test_dependents_include_self(self, example1_network):
        compiled = CompiledNetwork.compile(example1_network)
        for j, affected in enumerate(compiled.dependents):
            assert j in affected

    def test_dependents_cover_shared_species(self):
        net = parse_network(
            """
            init: a = 5
            init: c = 5
            a ->{1} b
            b ->{1} c
            c ->{1} d
            """
        )
        compiled = CompiledNetwork.compile(net)
        # firing reaction 0 changes a and b -> must include reaction 1 (consumes b)
        assert 1 in compiled.dependents[0]
        # firing reaction 0 does not touch c -> reaction 2 unaffected
        assert 2 not in compiled.dependents[0]

    def test_mass_action_rates_continuous(self):
        net = parse_network("2 x ->{3} y\ninit: x = 4")
        compiled = CompiledNetwork.compile(net)
        concentrations = np.array([0.0, 0.0], dtype=float)
        x_index = compiled.species_index()[[s for s in compiled.species if s.name == "x"][0]]
        concentrations[x_index] = 2.0
        rates = compiled.mass_action_rates(concentrations)
        assert rates[0] == pytest.approx(3 * 2.0**2)
