"""Tests for graph views, design reports and decision-time statistics."""

from __future__ import annotations

import pytest

from repro.analysis import decision_time_statistics, decision_time_vs_gamma
from repro.core import design_report, synthesize_distribution, verify_by_sampling
from repro.crn import bipartite_graph, graph_summary, parse_network, to_dot
from repro.errors import AnalysisError


class TestBipartiteGraph:
    def test_node_kinds_and_counts(self, example1_network):
        graph = bipartite_graph(example1_network)
        species_nodes = [n for n, d in graph.nodes(data=True) if d["kind"] == "species"]
        reaction_nodes = [n for n, d in graph.nodes(data=True) if d["kind"] == "reaction"]
        assert len(species_nodes) == len(example1_network.species)
        assert len(reaction_nodes) == example1_network.size

    def test_edges_carry_coefficients(self):
        net = parse_network("2 a ->{1} 3 b")
        graph = bipartite_graph(net)
        assert graph["a"]["R0"]["coefficient"] == 2
        assert graph["R0"]["b"]["coefficient"] == 3

    def test_summary(self, example1_network):
        summary = graph_summary(example1_network)
        assert summary.n_reactions == example1_network.size
        assert summary.n_species == len(example1_network.species)
        assert summary.weakly_connected_components == 1
        assert summary.max_species_degree >= 3

    def test_disconnected_components_detected(self):
        net = parse_network("a ->{1} b\nc ->{1} d")
        assert graph_summary(net).weakly_connected_components == 2


class TestDotExport:
    def test_dot_contains_species_and_reactions(self, race_network):
        dot = to_dot(race_network, title="race")
        assert dot.startswith('digraph "race"')
        assert '"e1"' in dot and '"d3"' in dot
        assert '"R0"' in dot and "rate=1" in dot
        assert dot.rstrip().endswith("}")

    def test_dot_labels_non_unit_coefficients(self):
        dot = to_dot(parse_network("2 a ->{5} b"))
        assert '[label="2"]' in dot


class TestDesignReport:
    def test_report_sections(self):
        system = synthesize_distribution({"a": 0.3, "b": 0.7}, gamma=1e3)
        text = design_report(system)
        for heading in ("# Design report", "## Target", "## Rate ladder",
                        "## Programmed initial quantities", "## Reactions by category",
                        "## Size"):
            assert heading in text
        assert "initializing" in text and "purifying" in text
        assert "e_a" in text

    def test_report_with_embedded_verification(self):
        system = synthesize_distribution({"a": 0.5, "b": 0.5}, gamma=1e3, scale=40)
        verification = verify_by_sampling(system, n_trials=120, seed=3, tolerance=0.15)
        text = design_report(system, verification=verification)
        assert "## Verification (Monte-Carlo)" in text
        assert "PASS" in text or "FAIL" in text

    def test_report_with_inline_verification_run(self):
        system = synthesize_distribution({"a": 0.5, "b": 0.5}, gamma=1e3, scale=40)
        text = design_report(system, verify_trials=80, seed=4)
        assert "## Verification (Monte-Carlo)" in text


class TestDecisionTime:
    def test_statistics_shape(self):
        system = synthesize_distribution({"a": 0.4, "b": 0.6}, gamma=1e3, scale=60)
        stats = decision_time_statistics(system, n_trials=80, seed=5)
        assert stats.n_trials > 0
        assert stats.mean > 0
        assert stats.p95 >= stats.median > 0
        assert stats.mean_firings > 10
        assert set(stats.as_dict()) == {
            "mean", "std", "median", "p95", "mean_firings", "n_trials"
        }

    def test_invalid_trials(self):
        system = synthesize_distribution({"a": 0.4, "b": 0.6})
        with pytest.raises(AnalysisError):
            decision_time_statistics(system, n_trials=0)

    def test_gamma_sweep_latency_accuracy_tradeoff(self):
        rows = decision_time_vs_gamma(
            {"a": 0.3, "b": 0.7}, gammas=[10.0, 1000.0], n_trials=80, seed=6
        )
        assert [row["gamma"] for row in rows] == [10.0, 1000.0]
        # Accuracy improves (TV does not get worse) while the decision time
        # stays on the same order: the slow tier sets the pace at any gamma.
        assert rows[1]["tv_from_target"] <= rows[0]["tv_from_target"] + 0.1
        assert rows[1]["mean_decision_time"] < 10 * rows[0]["mean_decision_time"] + 1.0
        assert all(row["mean_firings"] > 0 for row in rows)
