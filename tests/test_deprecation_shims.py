"""Old call paths keep working — and warn — after the facade redesign."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.api import Experiment
from repro.core import settle_statistics
from repro.core.modules import linear_module
from repro.crn import parse_network
from repro.errors import SimulationError
from repro.sim import OutcomeThresholds


@pytest.fixture
def race_net():
    return parse_network(
        """
        init: ea = 60
        init: eb = 40
        ea ->{1} wa
        eb ->{1} wb
        """
    )


@pytest.fixture
def condition():
    return OutcomeThresholds({"A": ("wa", 1), "B": ("wb", 1)})


class TestRunEnsembleShim:
    def test_warns_and_matches_facade(self, race_net, condition):
        from repro.sim import run_ensemble

        with pytest.warns(DeprecationWarning, match="run_ensemble"):
            old = run_ensemble(race_net, 150, stopping=condition, seed=5)
        new = Experiment.from_network(race_net, stopping=condition).simulate(
            trials=150, seed=5
        )
        assert old.outcome_counts == new.ensemble.outcome_counts
        np.testing.assert_array_equal(old.final_counts, new.ensemble.final_counts)

    def test_old_keyword_signature_still_accepted(self, race_net, condition):
        from repro.sim import SimulationOptions, run_ensemble

        with pytest.warns(DeprecationWarning):
            result = run_ensemble(
                race_net,
                n_trials=40,
                stopping=condition,
                engine="batch-direct",
                seed=2,
                options=SimulationOptions(record_firings=False),
                keep_trajectories=False,
                workers=2,
            )
        assert result.n_trials == 40


class TestSettleStatisticsShim:
    def test_warns_and_keeps_result_shape(self):
        with pytest.warns(DeprecationWarning, match="settle_statistics"):
            stats = settle_statistics(
                linear_module(alpha=1, beta=2), {"x": 5}, n_trials=8, seed=3
            )
        assert set(stats) == {"mean", "std", "min", "max", "n_trials", "expected"}
        assert stats["mean"] == pytest.approx(10.0, abs=0.1)
        assert stats["n_trials"] == 8.0

    def test_validation_still_raises(self):
        with pytest.raises(SimulationError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                settle_statistics(linear_module(), {"x": 1}, n_trials=0)


class TestEngineDictShims:
    def test_ensemble_module_attributes_warn_and_reflect_registry(self):
        import repro.sim.ensemble as ensemble
        from repro.sim.registry import registry

        with pytest.warns(DeprecationWarning, match="ENGINES"):
            engines = ensemble.ENGINES
        with pytest.warns(DeprecationWarning, match="BATCH_ENGINES"):
            batch_engines = ensemble.BATCH_ENGINES
        assert set(engines) == set(registry.per_trial_names())
        assert set(batch_engines) == set(registry.batched_names())
        assert engines["direct"] is registry.get("direct").cls

    def test_package_level_import_still_works(self):
        with pytest.warns(DeprecationWarning):
            from repro.sim import ENGINES

        assert "direct" in ENGINES

    def test_unknown_attribute_raises(self):
        import repro.sim.ensemble as ensemble

        with pytest.raises(AttributeError):
            ensemble.NOT_A_THING

    def test_engine_names_matches_registry(self):
        from repro.sim import engine_names
        from repro.sim.registry import registry

        assert engine_names() == registry.names()
