"""Tests for stoichiometric matrix analysis (repro.crn.stoichiometry)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crn import (
    Reaction,
    ReactionNetwork,
    Species,
    conservation_laws,
    parse_network,
    product_matrix,
    reactant_matrix,
    stoichiometry_matrix,
)


@pytest.fixture
def conversion_network() -> ReactionNetwork:
    """x -> y -> z: total x + y + z is conserved."""
    return parse_network(
        """
        init: x = 10
        x ->{1} y
        y ->{2} z
        """
    )


class TestMatrices:
    def test_shapes(self, conversion_network):
        matrix = stoichiometry_matrix(conversion_network)
        assert matrix.net.shape == (3, 2)
        assert matrix.n_species == 3
        assert matrix.n_reactions == 2

    def test_net_is_products_minus_reactants(self, conversion_network):
        matrix = stoichiometry_matrix(conversion_network)
        np.testing.assert_array_equal(
            matrix.net, product_matrix(conversion_network) - reactant_matrix(conversion_network)
        )

    def test_entries(self, conversion_network):
        matrix = stoichiometry_matrix(conversion_network)
        row = matrix.row_index()
        x, y, z = row[Species("x")], row[Species("y")], row[Species("z")]
        assert matrix.net[x, 0] == -1 and matrix.net[y, 0] == 1
        assert matrix.net[y, 1] == -1 and matrix.net[z, 1] == 1

    def test_coefficients_respected(self):
        net = parse_network("2 a ->{1} 3 b")
        matrix = stoichiometry_matrix(net)
        row = matrix.row_index()
        assert matrix.reactants[row[Species("a")], 0] == 2
        assert matrix.products[row[Species("b")], 0] == 3
        assert matrix.net[row[Species("a")], 0] == -2

    def test_rank(self, conversion_network):
        assert stoichiometry_matrix(conversion_network).rank() == 2


class TestConservationLaws:
    def test_total_mass_conserved_in_chain(self, conversion_network):
        matrix = stoichiometry_matrix(conversion_network)
        laws = conservation_laws(matrix)
        assert len(laws) == 1
        weights = laws[0]
        values = {s.name: w for s, w in weights.items()}
        # x + y + z conserved: all weights equal (up to normalization).
        assert pytest.approx(values["x"], rel=1e-6) == values["y"]
        assert pytest.approx(values["y"], rel=1e-6) == values["z"]

    def test_open_system_has_no_laws(self):
        net = parse_network("src ->{1} src + x\nx ->{1} 0\ninit: src = 1")
        matrix = stoichiometry_matrix(net)
        laws = conservation_laws(matrix)
        # src is conserved (catalytic); x is not. Exactly one law involving src only.
        assert len(laws) == 1
        assert {s.name for s in laws[0]} == {"src"}

    def test_purifying_reaction_breaks_conservation(self):
        net = parse_network("d1 + d2 ->{1} 0\ninit: d1 = 1\ninit: d2 = 2")
        laws = conservation_laws(stoichiometry_matrix(net))
        # d1 - d2 is conserved by d1 + d2 -> 0 (both decrease together).
        assert len(laws) == 1
        weights = {s.name: w for s, w in laws[0].items()}
        assert pytest.approx(weights["d1"] + weights["d2"], abs=1e-9) == 0.0

    def test_conserved_quantities_method(self, conversion_network):
        matrix = stoichiometry_matrix(conversion_network)
        assert matrix.conserved_quantities() == conservation_laws(matrix)

    def test_law_annihilates_net_matrix(self, example1_network):
        matrix = stoichiometry_matrix(example1_network)
        for law in conservation_laws(matrix):
            vector = np.zeros(matrix.n_species)
            index = matrix.row_index()
            for species, weight in law.items():
                vector[index[species]] = weight
            residual = vector @ matrix.net
            assert np.allclose(residual, 0.0, atol=1e-8)
