"""Tests for repro.crn.reaction."""

from __future__ import annotations

import pytest

from repro.crn import Reaction, Species
from repro.errors import ReactionError


@pytest.fixture
def ab_to_2c() -> Reaction:
    return Reaction({"a": 1, "b": 1}, {"c": 2}, rate=10.0)


class TestConstruction:
    def test_basic(self, ab_to_2c):
        assert ab_to_2c.rate == 10.0
        assert ab_to_2c.reactants == {Species("a"): 1, Species("b"): 1}
        assert ab_to_2c.products == {Species("c"): 2}

    def test_accepts_pairs_iterable(self):
        r = Reaction([("a", 1), ("a", 1)], [("b", 1)], rate=1.0)
        assert r.reactants == {Species("a"): 2}

    def test_zero_coefficients_dropped(self):
        r = Reaction({"a": 1, "b": 0}, {"c": 1}, rate=1.0)
        assert Species("b") not in r.reactants

    def test_empty_products_allowed(self):
        r = Reaction({"d1": 1, "d2": 1}, {}, rate=1e6)
        assert r.products == {}

    def test_empty_reactants_allowed(self):
        r = Reaction({}, {"x": 1}, rate=1.0)
        assert r.reactants == {}

    @pytest.mark.parametrize("rate", [0.0, -1.0, float("inf"), float("nan"), "fast", None])
    def test_invalid_rates_rejected(self, rate):
        with pytest.raises(ReactionError):
            Reaction({"a": 1}, {"b": 1}, rate=rate)

    @pytest.mark.parametrize("coefficient", [-1, 1.5, True])
    def test_invalid_coefficients_rejected(self, coefficient):
        with pytest.raises(ReactionError):
            Reaction({"a": coefficient}, {"b": 1}, rate=1.0)


class TestStructure:
    def test_order(self, ab_to_2c):
        assert ab_to_2c.order == 2

    def test_order_with_coefficient_two(self):
        assert Reaction({"x": 2}, {"y": 1}, rate=1.0).order == 2

    def test_species_set(self, ab_to_2c):
        assert ab_to_2c.species == {Species("a"), Species("b"), Species("c")}

    def test_net_change(self, ab_to_2c):
        assert ab_to_2c.net_change() == {Species("a"): -1, Species("b"): -1, Species("c"): 2}

    def test_net_change_cancels_catalyst(self):
        r = Reaction({"d": 1, "f": 1}, {"d": 1, "o": 1}, rate=1.0)
        change = r.net_change()
        assert Species("d") not in change
        assert change == {Species("f"): -1, Species("o"): 1}

    def test_is_catalytic_in(self):
        r = Reaction({"d": 1, "f": 1}, {"d": 1, "o": 1}, rate=1.0)
        assert r.is_catalytic_in("d")
        assert not r.is_catalytic_in("f")
        assert not r.is_catalytic_in("o")

    def test_coefficient_queries(self, ab_to_2c):
        assert ab_to_2c.reactant_coefficient("a") == 1
        assert ab_to_2c.reactant_coefficient("c") == 0
        assert ab_to_2c.product_coefficient("c") == 2


class TestTransformations:
    def test_scaled(self, ab_to_2c):
        assert ab_to_2c.scaled(100).rate == pytest.approx(1000.0)

    def test_scaled_preserves_structure(self, ab_to_2c):
        scaled = ab_to_2c.scaled(2)
        assert scaled.reactants == ab_to_2c.reactants
        assert scaled.products == ab_to_2c.products

    def test_with_rate(self, ab_to_2c):
        assert ab_to_2c.with_rate(3.0).rate == 3.0

    def test_with_name_and_category(self, ab_to_2c):
        renamed = ab_to_2c.with_name("working[1]", category="working")
        assert renamed.name == "working[1]"
        assert renamed.category == "working"

    def test_rename_species(self, ab_to_2c):
        renamed = ab_to_2c.rename_species({"a": "x", "c": "z"})
        assert Species("x") in renamed.reactants
        assert Species("z") in renamed.products
        assert Species("a") not in renamed.reactants

    def test_rename_merges_collisions(self):
        r = Reaction({"a": 1, "b": 1}, {"c": 1}, rate=1.0)
        merged = r.rename_species({"b": "a"})
        assert merged.reactants == {Species("a"): 2}


class TestEqualityAndRendering:
    def test_equality(self):
        assert Reaction({"a": 1}, {"b": 1}, rate=2.0) == Reaction({"a": 1}, {"b": 1}, rate=2.0)

    def test_inequality_on_rate(self):
        assert Reaction({"a": 1}, {"b": 1}, rate=2.0) != Reaction({"a": 1}, {"b": 1}, rate=3.0)

    def test_category_not_in_equality(self):
        assert Reaction({"a": 1}, {"b": 1}, rate=2.0, category="x") == Reaction(
            {"a": 1}, {"b": 1}, rate=2.0, category="y"
        )

    def test_hash_consistent_with_equality(self):
        assert len({Reaction({"a": 1}, {"b": 1}, rate=2.0),
                    Reaction({"a": 1}, {"b": 1}, rate=2.0)}) == 1

    def test_str_renders_paper_style(self, ab_to_2c):
        assert str(ab_to_2c) == "a + b ->{10} 2 c"

    def test_str_empty_products(self):
        assert str(Reaction({"d1": 1}, {}, rate=1.0)) == "d1 ->{1} ∅"
