"""Tests for the deterministic functional modules (Section 2.2.1).

Each module is simulated to completion ("settled") and its output compared to
the function it is supposed to compute.  Inputs are kept small so tests are
fast; the A1 benchmark sweeps wider ranges.
"""

from __future__ import annotations

import pytest

from repro.core import settle_module, settle_statistics
from repro.core.modules import (
    DEFAULT_TIERS,
    assimilation_module,
    exponentiation_module,
    fanout_module,
    isolation_module,
    linear_module,
    logarithm_module,
    power_module,
)
from repro.errors import ModuleCompositionError, SpecificationError


class TestLinearModule:
    @pytest.mark.parametrize("alpha, beta, x0, expected", [
        (1, 1, 7, 7),
        (1, 3, 5, 15),
        (2, 1, 10, 5),
        (6, 1, 10, 1),     # the lambda model's MOI/6 term (floor)
        (2, 3, 10, 15),
    ])
    def test_gain(self, alpha, beta, x0, expected):
        module = linear_module(alpha=alpha, beta=beta)
        result = settle_module(module, {"x": x0}, seed=1)
        assert result.output("y") == expected

    def test_expected_function(self):
        module = linear_module(alpha=2, beta=3)
        assert module.expected_outputs({"x": 10}) == {"y": 15}

    def test_description_and_ports(self):
        module = linear_module(alpha=1, beta=6, input_name="ylog", output_name="y2")
        assert module.input_species("x") == "ylog"
        assert module.output_species("y") == "y2"

    def test_validation(self):
        with pytest.raises(SpecificationError):
            linear_module(alpha=0, beta=1)
        with pytest.raises(SpecificationError):
            linear_module(input_name="x", output_name="x")


class TestExponentiationModule:
    @pytest.mark.parametrize("x0", [0, 1, 2, 3, 4, 5])
    def test_powers_of_two(self, x0):
        module = exponentiation_module()
        result = settle_module(module, {"x": x0}, seed=3)
        assert result.output("y") == 2 ** x0

    def test_initial_output_scales_result(self):
        module = exponentiation_module(initial_output=3)
        result = settle_module(module, {"x": 2}, seed=4)
        assert result.output("y") == 12

    def test_statistics_are_tight(self):
        stats = settle_statistics(exponentiation_module(), {"x": 4}, n_trials=10, seed=5)
        assert stats["mean"] == pytest.approx(16, abs=1.5)
        assert stats["expected"] == 16

    def test_validation(self):
        with pytest.raises(SpecificationError):
            exponentiation_module(initial_output=0)
        with pytest.raises(SpecificationError):
            exponentiation_module(input_name="y", output_name="y")


class TestLogarithmModule:
    @pytest.mark.parametrize("x0, expected", [(2, 1), (4, 2), (8, 3), (16, 4), (32, 5)])
    def test_exact_powers_of_two(self, x0, expected):
        module = logarithm_module()
        result = settle_module(module, {"x": x0}, seed=6)
        assert result.output("y") == expected

    def test_x_equals_one_gives_zero(self):
        result = settle_module(logarithm_module(), {"x": 1}, seed=7)
        assert result.output("y") == 0

    def test_non_power_of_two_close_to_floor(self):
        stats = settle_statistics(logarithm_module(), {"x": 10}, n_trials=10, seed=8)
        # log2(10) = 3.32; the chemistry gives ~floor values with small spread.
        assert 2.5 <= stats["mean"] <= 4.0

    def test_validation(self):
        with pytest.raises(SpecificationError):
            logarithm_module(trigger_quantity=0)


class TestPowerModule:
    @pytest.mark.parametrize("x0, p0, expected", [
        (2, 0, 1),
        (2, 1, 2),
        (2, 2, 4),
        (3, 2, 9),
        (2, 3, 8),
        (4, 2, 16),
    ])
    def test_small_powers(self, x0, p0, expected):
        module = power_module()
        result = settle_module(module, {"x": x0, "p": p0}, seed=9)
        assert result.output("y") == expected

    def test_uses_all_seven_tiers(self):
        module = power_module()
        rates = {reaction.rate for reaction in module.network.reactions}
        assert len(rates) == len(DEFAULT_TIERS.TIERS)

    def test_validation(self):
        with pytest.raises(SpecificationError):
            power_module(input_name="x", exponent_name="x", output_name="y")
        with pytest.raises(SpecificationError):
            power_module(initial_output=0)


class TestIsolationModule:
    @pytest.mark.parametrize("y0, c0", [(5, 5), (20, 3), (1, 1), (50, 10)])
    def test_leaves_exactly_one(self, y0, c0):
        module = isolation_module(initial_output=y0, initial_catalyst=c0)
        result = settle_module(module, seed=10)
        assert result.output("y") == 1
        assert result.final_state.get("c", 0) == 0

    def test_validation(self):
        with pytest.raises(SpecificationError):
            isolation_module(initial_output=0)
        with pytest.raises(SpecificationError):
            isolation_module(output_name="y", catalyst_name="y")


class TestGlueModules:
    def test_fanout_copies_quantity(self):
        module = fanout_module("moi", ["x1", "x2"])
        result = settle_module(module, {"x": 7}, seed=11)
        assert result.outputs == {"x1": 7, "x2": 7}

    def test_fanout_three_way(self):
        module = fanout_module("inp", ["a1", "a2", "a3"])
        result = settle_module(module, {"x": 4}, seed=12)
        assert set(result.outputs.values()) == {4}

    def test_fanout_validation(self):
        with pytest.raises(SpecificationError):
            fanout_module("x", ["only_one"])
        with pytest.raises(SpecificationError):
            fanout_module("x", ["x", "y"])
        with pytest.raises(SpecificationError):
            fanout_module("x", ["y", "y"])

    def test_assimilation_moves_mass(self):
        module = assimilation_module("e_from", "e_to", "y")
        prepared = module.with_input_quantities({"source": 20, "target": 5, "control": 8})
        result = settle_module(prepared, seed=13)
        assert result.final_state.get("e_from", 0) == 12
        assert result.final_state.get("e_to", 0) == 13

    def test_assimilation_limited_by_source(self):
        module = assimilation_module("e_from", "e_to", "y")
        prepared = module.with_input_quantities({"source": 3, "target": 0, "control": 10})
        result = settle_module(prepared, seed=14)
        assert result.final_state.get("e_to", 0) == 3

    def test_assimilation_validation(self):
        with pytest.raises(SpecificationError):
            assimilation_module("e", "e", "y")
        with pytest.raises(SpecificationError):
            assimilation_module("e1", "e2", "e1")


class TestFunctionalModuleInterface:
    def test_namespacing_keeps_ports(self):
        module = exponentiation_module().namespaced("exp1")
        names = {s.name for s in module.network.species}
        assert "exp1.a" in names         # internal loop species namespaced
        assert "x" in names and "y" in names

    def test_renamed_ports(self):
        module = linear_module().renamed_ports({"y": "downstream_in"})
        assert module.output_species("y") == "downstream_in"
        assert module.network.has_species("downstream_in")

    def test_unknown_port_raises(self):
        with pytest.raises(ModuleCompositionError):
            linear_module().input_species("p")

    def test_expected_outputs_requires_function(self):
        module = linear_module()
        module.expected = None
        with pytest.raises(ModuleCompositionError):
            module.expected_outputs({"x": 1})

    def test_port_must_exist_in_network(self):
        from repro.core.modules.base import FunctionalModule
        from repro.crn import parse_network

        with pytest.raises(ModuleCompositionError):
            FunctionalModule(
                name="broken",
                network=parse_network("a ->{1} b"),
                inputs={"x": "missing"},
                outputs={"y": "b"},
            )
