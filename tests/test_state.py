"""Tests for repro.crn.state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crn import Reaction, Species, State
from repro.errors import CRNError


class TestBasics:
    def test_get_default_zero(self):
        assert State()["a"] == 0

    def test_set_and_get(self):
        s = State()
        s["a"] = 5
        assert s["a"] == 5

    def test_init_from_mapping(self):
        s = State({"a": 15, "b": 25})
        assert (s["a"], s["b"], s["c"]) == (15, 25, 0)

    def test_zero_removes_entry(self):
        s = State({"a": 2})
        s["a"] = 0
        assert Species("a") not in s.species()
        assert len(s) == 0

    def test_negative_rejected(self):
        with pytest.raises(CRNError):
            State({"a": -1})

    @pytest.mark.parametrize("value", [1.5, "x", None])
    def test_non_integer_rejected(self, value):
        s = State()
        with pytest.raises(CRNError):
            s["a"] = value

    def test_numpy_integer_accepted(self):
        s = State()
        s["a"] = np.int64(4)
        assert s["a"] == 4

    def test_contains_only_positive(self):
        s = State({"a": 1})
        assert "a" in s
        assert "b" not in s

    def test_total(self):
        assert State({"a": 2, "b": 3}).total() == 5


class TestReactionApplication:
    def test_apply_paper_example(self):
        # S1 = [15, 25, 0]; a + b -> 2c gives S2 = [14, 24, 2]  (Section 1.1)
        s = State({"a": 15, "b": 25})
        s.apply(Reaction({"a": 1, "b": 1}, {"c": 2}, rate=10.0))
        assert s.to_dict() == {"a": 14, "b": 24, "c": 2}

    def test_can_fire(self):
        s = State({"a": 1})
        assert s.can_fire(Reaction({"a": 1}, {"b": 1}, rate=1.0))
        assert not s.can_fire(Reaction({"a": 2}, {"b": 1}, rate=1.0))

    def test_apply_insufficient_raises(self):
        s = State({"a": 1})
        with pytest.raises(CRNError):
            s.apply(Reaction({"a": 2}, {"b": 1}, rate=1.0))

    def test_applied_returns_copy(self):
        s = State({"a": 1})
        s2 = s.applied(Reaction({"a": 1}, {"b": 1}, rate=1.0))
        assert s["a"] == 1 and s["b"] == 0
        assert s2["a"] == 0 and s2["b"] == 1


class TestConversion:
    def test_copy_is_independent(self):
        s = State({"a": 1})
        c = s.copy()
        c["a"] = 5
        assert s["a"] == 1

    def test_to_vector_and_back(self):
        s = State({"a": 1, "c": 3})
        order = ["a", "b", "c"]
        vector = s.to_vector(order)
        assert vector.tolist() == [1, 0, 3]
        assert State.from_vector(vector, order) == s

    def test_from_vector_length_mismatch(self):
        with pytest.raises(CRNError):
            State.from_vector([1, 2], ["a"])

    def test_key_with_order(self):
        assert State({"a": 1}).key(["a", "b"]) == (1, 0)

    def test_equality_and_hash(self):
        assert State({"a": 1}) == State({"a": 1})
        assert hash(State({"a": 1})) == hash(State({"a": 1}))
        assert State({"a": 1}) != State({"a": 2})

    def test_repr_sorted(self):
        assert repr(State({"b": 2, "a": 1})) == "State({a: 1, b: 2})"
