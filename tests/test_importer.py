"""The declarative model importer: schema validation, round trips, mapping."""

from __future__ import annotations

import pytest

from repro.crn import (
    MODEL_SCHEMA,
    ConformancePolicy,
    GeneratorConfig,
    ModelDocument,
    Reaction,
    generate_model,
    load_model_file,
    model_from_dict,
    model_from_json,
    model_from_yaml,
    model_to_dict,
    model_to_json,
    model_to_yaml,
    save_model_file,
)
from repro.errors import GeneratorError, ModelSchemaError, SerializationError
from repro.sim.events import AnyCondition, OutcomeThresholds
from repro.sim.fsp import ThresholdStateClassifier


def race_document(**overrides) -> dict:
    """A minimal valid two-outcome race document."""
    document = {
        "schema": MODEL_SCHEMA,
        "name": "race",
        "species": [{"name": "e1", "initial": 10}, {"name": "e2", "initial": 10}],
        "reactions": ["e1 ->{1.0} d1", "e2 ->{2.0} d2"],
        "outcomes": [
            {"label": "one", "species": "d1", "count": 5},
            {"label": "two", "species": "d2", "count": 5},
        ],
    }
    document.update(overrides)
    return document


# ---------------------------------------------------------------------------
# parsing and normalization
# ---------------------------------------------------------------------------


def test_parses_dsl_and_mapping_reaction_forms():
    model = model_from_dict(race_document(reactions=[
        "e1 ->{1.0} d1",
        {"reactants": {"e2": 1}, "products": {"d2": 1}, "rate": 2.0, "name": "r2"},
    ]))
    assert model.reactions[0] == Reaction({"e1": 1}, {"d1": 1}, rate=1.0)
    assert model.reactions[1].name == "r2"
    assert model.reactions[1].rate == 2.0


def test_undeclared_reaction_species_are_appended_at_zero():
    model = model_from_dict(race_document())
    by_name = {spec.name: spec.initial for spec in model.species}
    assert by_name == {"e1": 10, "e2": 10, "d1": 0, "d2": 0}


def test_numeric_string_rates_are_accepted():
    model = model_from_dict(race_document(reactions=[
        {"reactants": {"e1": 1}, "products": {"d1": 1}, "rate": "1e3"},
        "e2 ->{2.0} d2",
    ]))
    assert model.reactions[0].rate == 1000.0


def test_network_mapping_preserves_counts_and_metadata():
    model = model_from_dict(race_document(metadata={"family": "race"}))
    network = model.network()
    assert network.name == "race"
    assert network.initial_count("e1") == 10
    assert network.initial_count("d1") == 0
    assert network.metadata["family"] == "race"
    assert {s.name for s in network.species} == {"e1", "e2", "d1", "d2"}


def test_outcomes_become_stopping_and_state_classifier():
    model = model_from_dict(race_document())
    assert isinstance(model.stopping(), OutcomeThresholds)
    classifier = model.state_classifier()
    assert isinstance(classifier, ThresholdStateClassifier)
    assert classifier({"d1": 5}) == "one"
    assert classifier({"d1": 4, "d2": 5}) == "two"
    assert classifier({"d1": 0, "d2": 0}) is None


def test_mixed_comparisons_compile_to_any_condition():
    model = model_from_dict(race_document(outcomes=[
        {"label": "boom", "species": "d1", "count": 5},
        {"label": "bust", "species": "e1", "count": 0, "comparison": "<="},
    ]))
    assert isinstance(model.stopping(), AnyCondition)
    classifier = model.state_classifier()
    assert classifier({"e1": 0}) == "bust"
    assert classifier({"e1": 3, "d1": 5}) == "boom"


def test_experiment_runs_on_sampling_and_exact_engines():
    experiment = model_from_dict(race_document()).experiment()
    exact = experiment.simulate(engine="fsp").exact
    assert set(exact) == {"one", "two"}
    sampled = experiment.simulate(trials=30, engine="direct", seed=5)
    assert sum(sampled.ensemble.outcome_counts.values()) == 30


# ---------------------------------------------------------------------------
# round trips
# ---------------------------------------------------------------------------


def test_dict_round_trip_is_identity():
    model = model_from_dict(race_document(
        description="two-way race", closed=True, metadata={"k": "v"},
        conformance={"enroll": True, "max_trials": 400},
    ))
    assert model_from_dict(model_to_dict(model)) == model


def test_yaml_and_json_round_trips_are_identity():
    model = model_from_dict(race_document())
    assert model_from_yaml(model_to_yaml(model)) == model
    assert model_from_json(model_to_json(model)) == model


def test_serialized_form_is_a_fixed_point():
    model = model_from_dict(race_document())
    text = model_to_yaml(model)
    assert model_to_yaml(model_from_yaml(text)) == text


def test_file_round_trip_by_extension(tmp_path):
    model = model_from_dict(race_document())
    for filename in ("model.yaml", "model.json"):
        path = save_model_file(model, tmp_path / filename)
        assert load_model_file(path) == model
    with pytest.raises(ModelSchemaError):
        save_model_file(model, tmp_path / "model.txt")
    (tmp_path / "model.csv").write_text("x")
    with pytest.raises(ModelSchemaError):
        load_model_file(tmp_path / "model.csv")


def test_generated_models_round_trip():
    model = generate_model(GeneratorConfig(), seed=9)
    assert model_from_yaml(model_to_yaml(model)) == model
    assert model_from_json(model_to_json(model)) == model


# ---------------------------------------------------------------------------
# error paths: every violation is typed and names the offending field
# ---------------------------------------------------------------------------


def assert_schema_error(document: dict, field: str) -> ModelSchemaError:
    with pytest.raises(ModelSchemaError) as excinfo:
        model_from_dict(document)
    assert excinfo.value.field == field, excinfo.value
    assert field in str(excinfo.value)
    return excinfo.value


def test_unknown_schema_version():
    error = assert_schema_error(race_document(schema="repro.model/v99"), "schema")
    assert "repro.model/v99" in str(error)
    assert_schema_error({k: v for k, v in race_document().items() if k != "schema"},
                        "schema")


def test_duplicate_species():
    assert_schema_error(
        race_document(species=[{"name": "e1", "initial": 1},
                               {"name": "e1", "initial": 2}]),
        "species[1].name",
    )


def test_malformed_rates():
    assert_schema_error(
        race_document(reactions=[
            {"reactants": {"e1": 1}, "products": {"d1": 1}, "rate": "fast"}]),
        "reactions[0].rate",
    )
    assert_schema_error(
        race_document(reactions=["e1 ->{1.0} d1",
                                 {"reactants": {"e2": 1}, "products": {"d2": 1}}]),
        "reactions[1].rate",
    )
    assert_schema_error(
        race_document(reactions=[
            {"reactants": {"e1": 1}, "products": {"d1": 1}, "rate": -2.0}]),
        "reactions[0].rate",
    )


def test_non_conservative_stoichiometry_in_closed_model():
    error = assert_schema_error(
        race_document(closed=True,
                      reactions=["e1 ->{1.0} 2 d1", "e2 ->{1.0} d2"]),
        "reactions[0]",
    )
    assert "non-conservative" in str(error)
    # The same reactions parse fine when the model is not declared closed.
    assert model_from_dict(
        race_document(reactions=["e1 ->{1.0} 2 d1", "e2 ->{1.0} d2"])
    ).closed is False


def test_bad_reaction_dsl_and_coefficients():
    assert_schema_error(race_document(reactions=["e1 -> d1"]), "reactions[0]")
    assert_schema_error(
        race_document(reactions=[
            {"reactants": {"e1": 0}, "products": {"d1": 1}, "rate": 1.0}]),
        "reactions[0].reactants['e1']",
    )


def test_outcome_errors():
    assert_schema_error(
        race_document(outcomes=[{"label": "one", "species": "ghost", "count": 5}]),
        "outcomes[0].species",
    )
    assert_schema_error(
        race_document(outcomes=[
            {"label": "one", "species": "d1", "count": 5},
            {"label": "one", "species": "d2", "count": 5},
        ]),
        "outcomes[1].label",
    )
    assert_schema_error(
        race_document(outcomes=[
            {"label": "one", "species": "d1", "count": 5, "comparison": ">"}]),
        "outcomes[0].comparison",
    )


def test_enrollment_constraints():
    assert_schema_error(
        race_document(outcomes=None, conformance={"enroll": True}),
        "conformance.enroll",
    )
    assert_schema_error(
        race_document(conformance={"enroll": True, "fsp_tractable": False}),
        "conformance.enroll",
    )


def test_unknown_keys_are_rejected_at_every_level():
    assert_schema_error(race_document(bogus=1), "$")
    assert_schema_error(
        race_document(species=[{"name": "e1", "count": 3}]), "species[0]"
    )
    assert_schema_error(race_document(conformance={"trials": 9}), "conformance")


def test_errors_are_catchable_as_serialization_errors():
    with pytest.raises(SerializationError):
        model_from_dict({"schema": "nope"})
    with pytest.raises(ModelSchemaError):
        model_from_yaml("::: not yaml {")
    with pytest.raises(ModelSchemaError):
        model_from_json("{not json")


# ---------------------------------------------------------------------------
# generator validation
# ---------------------------------------------------------------------------


def test_generator_config_validation():
    with pytest.raises(GeneratorError):
        GeneratorConfig(n_outcomes=1)
    with pytest.raises(GeneratorError):
        GeneratorConfig(chain_length=0)
    with pytest.raises(GeneratorError):
        GeneratorConfig(n_outcomes=3, scale=5)
    with pytest.raises(GeneratorError):
        GeneratorConfig(stiffness=-1.0)
    with pytest.raises(GeneratorError):
        GeneratorConfig(n_outcomes=2, chain_length=1, cross_edges=99)


def test_generated_model_is_enrolled_and_closed():
    model = generate_model(GeneratorConfig(), seed=1)
    assert model.closed is True
    assert model.conformance == ConformancePolicy(enroll=True)
    assert isinstance(model, ModelDocument)
    assert dict(model.metadata)["generator"]["seed"] == 1
