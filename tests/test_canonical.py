"""Tests for isomorphism-aware canonical fingerprints and store tiering.

Covers the canonical-labeling pass (:mod:`repro.crn.canonical`), the
payload-level threading (:mod:`repro.store.canonical`), the renamed-model
warm-hit contract of ``Experiment.simulate(store=)``, the hot/cold store
tiers, and the fingerprint numeric-aliasing + ``evict()`` regressions.
"""

from __future__ import annotations

import dataclasses
import gzip
import json
import pickle
import random

import pytest

from repro.api import Experiment
from repro.crn import ReactionNetwork
from repro.crn.canonical import (
    canonical_form,
    is_isomorphic,
    isomorphism_witness,
    network_invariants,
)
from repro.crn.generate import GeneratorConfig, generate_network
from repro.errors import ExperimentError, NetworkError
from repro.store import (
    ResultStore,
    canonical_json,
    canonicalize_payload,
    experiment_to_payload,
    fingerprint_payload,
    normalize_numbers,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _generated(seed: int) -> ReactionNetwork:
    config = GeneratorConfig(n_outcomes=2, chain_length=2, scale=24)
    return generate_network(config, seed=seed)


def _scrambled(network: ReactionNetwork, seed: int) -> "tuple[ReactionNetwork, dict]":
    """A reaction-shuffled, species-permuted copy plus the rename used."""
    rng = random.Random(seed)
    reactions = list(network.reactions)
    rng.shuffle(reactions)
    names = [sp.name for sp in network.species]
    permuted = list(names)
    rng.shuffle(permuted)
    mapping = dict(zip(names, permuted))
    shuffled = ReactionNetwork(
        reactions,
        initial_state={sp.name: c for sp, c in network.initial_state.items()},
        name=network.name,
        species=names,
    )
    return shuffled.renamed(mapping), mapping


def _reaction_multiset(network: ReactionNetwork) -> set:
    return {
        (
            tuple(sorted((s.name, c) for s, c in r.reactants.items())),
            tuple(sorted((s.name, c) for s, c in r.products.items())),
            r.rate,
            r.name,
            r.category,
        )
        for r in network.reactions
    }


# ---------------------------------------------------------------------------
# canonical labeling: property suite over generated CRNs
# ---------------------------------------------------------------------------


class TestCanonicalFormProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 120), scramble=st.integers(0, 1000))
    def test_scrambling_preserves_canonical_key(self, seed, scramble):
        network = _generated(seed)
        variant, _ = _scrambled(network, scramble)
        assert network_invariants(network) == network_invariants(variant)
        assert canonical_form(network).key == canonical_form(variant).key

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 120), scramble=st.integers(0, 1000))
    def test_witness_round_trip_is_exact(self, seed, scramble):
        network = _generated(seed)
        variant, _ = _scrambled(network, scramble)
        witness = isomorphism_witness(network, variant)
        assert witness is not None
        translated = network.renamed(witness)
        assert _reaction_multiset(translated) == _reaction_multiset(variant)
        assert {s.name: c for s, c in translated.initial_state.items()} == {
            s.name: c for s, c in variant.initial_state.items()
        }

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 120), mutation=st.integers(0, 2))
    def test_mutants_get_different_keys(self, seed, mutation):
        network = _generated(seed)
        reactions = list(network.reactions)
        initial = {sp.name: c for sp, c in network.initial_state.items()}
        if mutation == 0:  # perturb one rate
            reactions[0] = reactions[0].scaled(1.618)
        elif mutation == 1:  # drop a reaction
            reactions = reactions[:-1]
        else:  # shift one molecule of initial state
            name = sorted(initial)[0]
            initial[name] = initial[name] + 1
        mutant = ReactionNetwork(
            reactions,
            initial_state=initial,
            species=[sp.name for sp in network.species],
        )
        assert canonical_form(network).key != canonical_form(mutant).key
        assert not is_isomorphic(network, mutant)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 120), scramble=st.integers(0, 1000))
    def test_payload_fingerprint_is_scramble_invariant(self, seed, scramble):
        network = _generated(seed)
        variant, mapping = _scrambled(network, scramble)
        prints = []
        for net in (network, variant):
            experiment = Experiment.from_network(net)
            payload = experiment_to_payload(
                experiment, trials=10, engine="direct", seed=3,
                chunk_size=64, backend="auto", engine_options=None, until=None,
            )
            prints.append(fingerprint_payload(payload))
        assert prints[0] == prints[1]


class TestCanonicalFormBasics:
    def test_canonical_network_is_fixed_point(self):
        network = _generated(5)
        form = canonical_form(network)
        again = canonical_form(form.network)
        assert again.key == form.key
        assert {s.name for s in form.network.species} == set(form.witness)

    def test_witness_maps_canonical_names_to_originals(self):
        network = _generated(5)
        form = canonical_form(network)
        originals = {sp.name for sp in network.species}
        assert set(form.witness.values()) == originals
        assert sorted(form.witness) == [name for name in sorted(form.witness)]

    def test_reaction_order_is_a_permutation(self):
        network = _generated(7)
        form = canonical_form(network)
        assert sorted(form.reaction_order) == list(range(network.size))


# ---------------------------------------------------------------------------
# renamed-model warm hits (the acceptance criterion)
# ---------------------------------------------------------------------------

RENAME = {"u": "activator", "v": "repressor", "p": "precursor"}


def _permuted_variant(experiment: Experiment) -> Experiment:
    """Species-renamed + reaction-permuted copy of a network experiment."""
    renamed = experiment.renamed(RENAME)
    network = renamed.network
    permuted = ReactionNetwork(
        list(reversed(list(network.reactions))),
        initial_state={sp.name: c for sp, c in network.initial_state.items()},
        name=network.name,
        species=[sp.name for sp in network.species],
    )
    return dataclasses.replace(renamed, network=permuted)


class TestRenamedWarmHits:
    @pytest.mark.parametrize("engine", ["direct", "first-reaction", "batch-direct", "fsp"])
    def test_renamed_permuted_variant_warm_hits(self, tmp_path, engine):
        store = ResultStore(tmp_path / "store")
        base = Experiment.from_zoo("toggle-switch")
        base.simulate(trials=30, engine=engine, seed=11, store=store)
        assert store.stats()["artifacts"] == 1

        variant = _permuted_variant(base)
        warm = variant.simulate(trials=30, engine=engine, seed=11, store=store)
        # A warm hit: the isomorphic variant addressed the same artifact.
        assert store.stats()["artifacts"] == 1

        # ...and the translated payload equals recomputing from scratch.
        cold = variant.simulate(
            trials=30, engine=engine, seed=11, store=ResultStore(tmp_path / "fresh")
        )
        assert canonical_json(warm.to_payload()) == canonical_json(cold.to_payload())

    def test_translated_species_namings(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        base = Experiment.from_zoo("toggle-switch")
        original = base.simulate(trials=25, engine="direct", seed=5, store=store)
        warm = _permuted_variant(base).simulate(
            trials=25, engine="direct", seed=5, store=store
        )
        assert sorted(s.name for s in original.ensemble.species) == ["p", "u", "v"]
        assert sorted(s.name for s in warm.ensemble.species) == sorted(RENAME.values())
        # Outcome labels are identity and never translated.
        assert set(warm.frequencies) == set(original.frequencies)
        assert warm.frequencies == original.frequencies

    def test_experiment_renamed_requires_network_kind(self):
        experiment = Experiment.from_distribution({"1": 0.5, "2": 0.5}, gamma=100)
        with pytest.raises(ExperimentError, match="network experiments"):
            experiment.renamed({"x": "y"})

    def test_experiment_renamed_is_injective(self):
        base = Experiment.from_zoo("toggle-switch")
        with pytest.raises(NetworkError, match="allow_merge"):
            base.renamed({"u": "v"})

    def test_v1_schema_payload_addresses_v2_entry(self, tmp_path):
        base = Experiment.from_zoo("toggle-switch")
        payload = experiment_to_payload(
            base, trials=10, engine="direct", seed=2,
            chunk_size=64, backend="auto", engine_options=None, until=None,
        )
        legacy = dict(payload)
        legacy["schema"] = "repro.experiment/v1"
        assert fingerprint_payload(legacy) == fingerprint_payload(payload)
        assert canonicalize_payload(legacy).payload["schema"] == "repro.experiment/v2"


# ---------------------------------------------------------------------------
# fingerprint numeric aliasing (regression)
# ---------------------------------------------------------------------------


class TestNumericAliasing:
    def test_negative_zero_aliases_zero(self):
        assert fingerprint_payload({"x": -0.0}) == fingerprint_payload({"x": 0.0})
        assert fingerprint_payload({"x": -0.0}) == fingerprint_payload({"x": 0})

    def test_integral_float_aliases_int(self):
        assert fingerprint_payload({"rate": 1.0}) == fingerprint_payload({"rate": 1})
        assert fingerprint_payload({"a": [2.0, 3.5]}) == fingerprint_payload(
            {"a": [2, 3.5]}
        )

    def test_bools_are_not_numbers(self):
        assert fingerprint_payload({"flag": True}) != fingerprint_payload({"flag": 1})
        assert normalize_numbers(True) is True

    def test_storage_path_preserves_spellings(self):
        # canonical_json without normalize keeps the exact numeric types —
        # persisted payloads round-trip byte-identically.
        assert canonical_json({"x": 1.0}) == '{"x":1.0}'
        assert canonical_json({"x": 1.0}, normalize=True) == '{"x":1}'

    def test_rate_respelling_same_fingerprint(self):
        base = Experiment.from_zoo("toggle-switch")
        payload = experiment_to_payload(
            base, trials=10, engine="direct", seed=2,
            chunk_size=64, backend="auto", engine_options=None, until=None,
        )
        respelled = normalize_numbers(json.loads(json.dumps(payload)))
        assert fingerprint_payload(respelled) == fingerprint_payload(payload)


# ---------------------------------------------------------------------------
# store tiering (hot LRU + gzip cold)
# ---------------------------------------------------------------------------


class TestStoreTiering:
    def _seed_artifact(self, store: ResultStore) -> str:
        experiment = Experiment.from_zoo("toggle-switch")
        experiment.simulate(trials=10, engine="direct", seed=3, store=store)
        [key] = store.keys()
        return key

    def test_cold_artifacts_are_gzip_compressed(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = self._seed_artifact(store)
        path = store._artifact_path(key)
        assert path.suffix == ".gz"
        envelope = json.loads(gzip.decompress(path.read_bytes()))
        assert envelope["key"] == key
        assert envelope["witness"]  # canonical writers record their witness

    def test_compressed_writes_are_deterministic(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = self._seed_artifact(store)
        path = store._artifact_path(key)
        first = path.read_bytes()
        experiment = Experiment.from_zoo("toggle-switch")
        experiment.simulate(trials=10, engine="direct", seed=3, store=store)
        assert path.read_bytes() == first  # gzip mtime=0: content-addressed bytes

    def test_legacy_uncompressed_artifacts_stay_readable(self, tmp_path):
        legacy = ResultStore(tmp_path / "store", compress=False)
        key = self._seed_artifact(legacy)
        assert legacy._artifact_path(key).suffix == ".json"
        modern = ResultStore(tmp_path / "store")
        assert modern.get_envelope(key) is not None
        assert key in modern.keys()
        assert modern.has(key)

    def test_hot_tier_serves_repeat_reads(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = self._seed_artifact(store)
        first = store.get_envelope(key)
        # Repeat reads come from the hot tier: same object, no disk I/O.
        assert store.get_envelope(key) is first
        store._artifact_path(key).unlink()
        assert store.get_envelope(key) is first

    def test_hot_capacity_zero_disables_tier(self, tmp_path):
        store = ResultStore(tmp_path / "store", hot_capacity=0)
        key = self._seed_artifact(store)
        first = store.get_envelope(key)
        assert store.get_envelope(key) is not first

    def test_hot_tier_is_bounded_lru(self, tmp_path):
        store = ResultStore(tmp_path / "store", hot_capacity=2)
        for fill in range(3):
            store.put(f"{fill:02d}" * 32, self._tiny_result(), descriptor=None)
        assert len(store._hot) == 2
        assert "00" * 32 not in store._hot  # oldest evicted

    def test_evict_invalidates_hot_tier(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = self._seed_artifact(store)
        store.get_envelope(key)
        assert store.evict(key)
        assert store.get_envelope(key) is None

    def test_pickled_store_restarts_with_empty_hot_tier(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = self._seed_artifact(store)
        store.get_envelope(key)
        clone = pickle.loads(pickle.dumps(store))
        assert len(clone._hot) == 0
        assert clone.get_envelope(key) is not None

    @staticmethod
    def _tiny_result():
        from repro.crn import Reaction
        from repro.sim.ensemble import EnsembleRunner
        from repro.sim.events import SpeciesThreshold

        network = ReactionNetwork(
            [Reaction({"a": 1}, {}, rate=1.0)], initial_state={"a": 1}
        )
        runner = EnsembleRunner(network, stopping=SpeciesThreshold("a", 0, label="done"))
        return runner.run(1, seed=1)


# ---------------------------------------------------------------------------
# evict() regression: stale index entries
# ---------------------------------------------------------------------------


class TestEvictReconciliation:
    def test_evict_true_for_stale_index_entry(self, tmp_path):
        store = ResultStore(tmp_path / "store", hot_capacity=0)
        experiment = Experiment.from_zoo("toggle-switch")
        experiment.simulate(trials=10, engine="direct", seed=3, store=store)
        [key] = store.keys()
        # The artifact file vanishes externally; only the index entry remains.
        store._artifact_path(key).unlink()
        assert key in json.loads(store._index_path.read_text())["artifacts"]
        assert store.evict(key) is True  # it removed the index entry
        assert key not in json.loads(store._index_path.read_text())["artifacts"]
        assert store.evict(key) is False  # nothing left to remove

    def test_evict_false_for_unknown_key(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.evict("ab" * 32) is False

    def test_evict_true_for_present_artifact(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        experiment = Experiment.from_zoo("toggle-switch")
        experiment.simulate(trials=10, engine="direct", seed=3, store=store)
        [key] = store.keys()
        assert store.evict(key) is True
        assert store.keys() == []


# ---------------------------------------------------------------------------
# canonical-form caching on live network objects
# ---------------------------------------------------------------------------


class TestCanonicalFormCache:
    @pytest.fixture
    def count_labelings(self, monkeypatch):
        """Count invocations of the (expensive) labeling search."""
        from repro.crn import canonical as canonical_module

        calls = []
        original = canonical_module._compute_canonical_form

        def counting(network):
            calls.append(network)
            return original(network)

        monkeypatch.setattr(canonical_module, "_compute_canonical_form", counting)
        return calls

    def test_repeated_calls_hit_the_cache(self, count_labelings):
        network = _generated(11)
        first = canonical_form(network)
        second = canonical_form(network)
        assert second is first  # identical object: no recompute, no copy
        assert len(count_labelings) == 1

    def test_distinct_objects_do_not_share_entries(self, count_labelings):
        a = _generated(11)
        b = _generated(11)
        assert canonical_form(a).key == canonical_form(b).key
        assert len(count_labelings) == 2

    def test_mutation_invalidates_the_cache(self, count_labelings):
        network = _generated(11)
        before = canonical_form(network)
        species = sorted(network.species, key=lambda s: s.name)[0]
        network.set_initial(species, network.initial_state[species] + 1)
        after = canonical_form(network)
        assert len(count_labelings) == 2
        assert after is not before
        # And the recomputed form is itself cached again.
        assert canonical_form(network) is after
        assert len(count_labelings) == 2

    def test_cache_entry_evicted_when_network_collected(self):
        import gc

        from repro.crn import canonical as canonical_module

        network = _generated(13)
        canonical_form(network)
        key = id(network)
        assert key in canonical_module._FORM_CACHE
        del network
        gc.collect()
        assert key not in canonical_module._FORM_CACHE

    def test_repeated_store_simulations_label_once(self, tmp_path, count_labelings):
        experiment = Experiment.from_zoo("toggle-switch")
        store = ResultStore(tmp_path / "store")
        experiment.simulate(trials=10, engine="direct", seed=3, store=store)
        experiment.simulate(trials=10, engine="direct", seed=3, store=store)  # hit
        experiment.simulate(trials=20, engine="direct", seed=4, store=store)  # miss
        assert len(count_labelings) == 1
