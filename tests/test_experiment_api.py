"""Tests for the fluent experiment facade (repro.api)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Experiment, RunResult
from repro.core import AffineResponseSpec
from repro.core.modules import linear_module, logarithm_module
from repro.crn import parse_network
from repro.errors import EnsembleError, ExperimentError
from repro.sim import OutcomeThresholds, TauLeapOptions

#: 99.9% chi-squared critical values by degrees of freedom.
CHI2_999 = {1: 10.83, 2: 13.82}


@pytest.fixture
def two_outcome_network():
    return parse_network(
        """
        init: ea = 70
        init: eb = 30
        ea ->{1} wa
        eb ->{1} wb
        """
    )


@pytest.fixture
def two_outcome_condition():
    return OutcomeThresholds({"A": ("wa", 1), "B": ("wb", 1)})


class TestFluentConstruction:
    def test_from_distribution_carries_system_and_target(self):
        experiment = Experiment.from_distribution({"a": 0.25, "b": 0.75}, scale=40)
        assert experiment.system is not None
        assert experiment._resolved_target() == pytest.approx({"a": 0.25, "b": 0.75})

    def test_fluent_methods_return_new_experiments(self):
        base = Experiment.from_distribution({"a": 0.5, "b": 0.5}, scale=20)
        programmed = base.program({"x": 3})
        assert programmed is not base
        assert base.inputs == ()
        assert dict(programmed.inputs) == {"x": 3}

    def test_program_merges_inputs(self):
        experiment = (
            Experiment.from_module(linear_module())
            .program({"x": 3})
            .program({"x": 5})
        )
        assert dict(experiment.inputs) == {"x": 5}

    def test_empty_experiment_rejected(self):
        with pytest.raises(ExperimentError, match="empty experiment"):
            Experiment().simulate(trials=1)

    def test_declare_after_validation(self):
        experiment = Experiment.from_distribution({"a": 0.5, "b": 0.5}, scale=20)
        with pytest.raises(ExperimentError):
            experiment.declare_after(0)


class TestSimulateEndToEnd:
    def test_example1_batch_parallel_reproduces_target(self):
        """Acceptance: batch engine + 2 workers hit Example 1's distribution.

        Chi-squared of the outcome counts against the programmed (0.3, 0.4,
        0.3) target, df=2, 99.9% critical value 13.82.
        """
        result = (
            Experiment.from_distribution({"1": 0.3, "2": 0.4, "3": 0.3}, gamma=1e3)
            .simulate(trials=2000, engine="batch-direct", workers=2, seed=11)
        )
        assert result.decided_fraction() == 1.0
        assert result.chi_squared() < CHI2_999[2]
        assert result.total_variation() < 0.1

    def test_worker_count_invariance(self):
        """Fixed (seed, trials, chunk_size) gives identical results on 2 or 3 workers."""
        experiment = Experiment.from_distribution({"a": 0.5, "b": 0.5}, scale=40)
        two = experiment.simulate(
            trials=600, engine="batch-direct", workers=2, seed=9, chunk_size=128
        )
        three = experiment.simulate(
            trials=600, engine="batch-direct", workers=3, seed=9, chunk_size=128
        )
        assert two.ensemble.outcome_counts == three.ensemble.outcome_counts
        np.testing.assert_array_equal(
            two.ensemble.final_counts, three.ensemble.final_counts
        )

    def test_module_settling(self):
        summary = (
            Experiment.from_module(logarithm_module())
            .program({"x": 16})
            .simulate(trials=12, seed=5)
            .output_summary("y")
        )
        assert summary["mean"] == pytest.approx(4.0, abs=0.5)
        assert summary["expected"] == 4.0
        assert summary["n_trials"] == 12.0

    def test_module_settling_batched(self):
        # linear_module computes alpha·Y∞ = beta·X0, so (1, 2) doubles the input.
        summary = (
            Experiment.from_module(linear_module(alpha=1, beta=2))
            .program({"x": 10})
            .simulate(trials=16, engine="batch-direct", seed=6)
            .output_summary("y")
        )
        assert summary["mean"] == pytest.approx(20.0, abs=0.1)

    def test_network_experiment(self, two_outcome_network, two_outcome_condition):
        result = (
            Experiment.from_network(two_outcome_network, stopping=two_outcome_condition)
            .targeting({"A": 0.7, "B": 0.3})
            .simulate(trials=800, engine="batch-direct", seed=13)
        )
        assert result.chi_squared() < CHI2_999[1]
        assert set(result.frequencies) == {"A", "B"}

    def test_affine_response_programming_shifts_distribution(self):
        spec = AffineResponseSpec(
            base={"a": 0.5, "b": 0.5},
            slopes={"a": {"x1": 0.03}, "b": {"x1": -0.03}},
        )
        experiment = Experiment.from_affine_response(spec, gamma=1e3, scale=100)
        baseline = experiment.simulate(trials=300, seed=21)
        shifted = experiment.program({"x1": 10}).simulate(trials=300, seed=21)
        # Slope 0.03 * 10 = +0.3 expected shift toward outcome "a".
        assert shifted.frequency("a") > baseline.frequency("a") + 0.1
        assert shifted.target["a"] == pytest.approx(0.8)

    def test_tau_leaping_options_flow_through(self):
        summary = (
            Experiment.from_module(linear_module())
            .program({"x": 30})
            .simulate(
                trials=8,
                engine="tau-leaping",
                seed=3,
                engine_options=TauLeapOptions(epsilon=0.01),
            )
            .output_summary("y")
        )
        assert summary["mean"] == pytest.approx(30.0, abs=3.0)

    def test_run_once_supports_deterministic_ode(self):
        trajectory = (
            Experiment.from_module(linear_module(alpha=2, beta=1))
            .program({"x": 10})
            .run_once(engine="ode")
        )
        assert trajectory.final_time > 0
        assert trajectory.final_count("y") == 5

    def test_ensemble_rejects_ode(self):
        experiment = Experiment.from_module(linear_module()).program({"x": 4})
        with pytest.raises(EnsembleError, match="deterministic"):
            experiment.simulate(trials=5, engine="ode")


class TestRunResult:
    @pytest.fixture
    def result(self):
        return Experiment.from_distribution({"a": 0.3, "b": 0.7}, scale=40).simulate(
            trials=300, engine="batch-direct", seed=17
        )

    def test_distances_keys_and_bounds(self, result):
        distances = result.distances()
        assert set(distances) == {
            "total_variation",
            "jensen_shannon",
            "hellinger",
            "kl_divergence",
        }
        assert 0.0 <= distances["total_variation"] <= 1.0
        assert distances["hellinger"] <= 1.0

    def test_decision_times_summary(self, result):
        times = result.decision_times()
        assert times["p95"] >= times["median"] > 0
        assert times["mean_firings"] > 0
        assert times["n_trials"] == 300.0

    def test_decision_times_raise_when_nothing_decided(self):
        # A horizon far shorter than the slow initializing tier: every trial
        # hits max_time before any working reaction fires, so no trial
        # decides and there is no latency to report.
        undecided = (
            Experiment.from_distribution({"a": 0.5, "b": 0.5}, gamma=1e3, scale=20)
            .configure(max_time=1e-9)
            .simulate(trials=20, seed=1)
        )
        assert undecided.decided_fraction() == 0.0
        with pytest.raises(ExperimentError, match="no trial reached a decision"):
            undecided.decision_times()

    def test_distance_requires_target(self, two_outcome_network, two_outcome_condition):
        bare = Experiment.from_network(
            two_outcome_network, stopping=two_outcome_condition
        ).simulate(trials=50, seed=2)
        with pytest.raises(ExperimentError, match="no target distribution"):
            bare.total_variation()
        # Explicit reference still works.
        assert bare.total_variation({"A": 0.7, "B": 0.3}) <= 1.0

    def test_json_round_trip(self, result, tmp_path):
        path = tmp_path / "run.json"
        result.to_json(path)
        restored = RunResult.from_json(path)
        assert restored.frequencies == result.frequencies
        assert restored.target == pytest.approx(result.target)
        assert restored.engine == result.engine
        assert restored.seed == result.seed
        assert restored.ensemble.n_trials == result.ensemble.n_trials
        np.testing.assert_array_equal(
            restored.ensemble.final_counts, result.ensemble.final_counts
        )
        # Distances recompute identically from the restored payload.
        assert restored.total_variation() == pytest.approx(result.total_variation())

    def test_json_round_trip_keeps_module_outputs(self, tmp_path):
        run = (
            Experiment.from_module(linear_module(alpha=1, beta=2))
            .program({"x": 6})
            .simulate(trials=5, seed=8)
        )
        restored = RunResult.from_json(run.to_json())
        assert restored.output_summary("y") == run.output_summary("y")

    def test_from_json_rejects_unknown_schema(self):
        with pytest.raises(ExperimentError, match="schema"):
            RunResult.from_json('{"schema": "other/v9"}')

    def test_summary_mentions_tv_distance(self, result):
        text = result.summary()
        assert "TV distance" in text
        assert "Ensemble of 300 trials" in text
