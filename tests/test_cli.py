"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "repro" in out

    def test_version_flag_reports_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit):
            main(["--version"])
        assert repro.__version__ in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_parser_lists_all_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("synthesize", "simulate", "settle", "engines", "serve",
                        "figure3", "figure5", "example1", "example2"):
            assert command in text


class TestStoreFlag:
    def test_example1_store_caches_run(self, tmp_path, capsys):
        from repro.store import ResultStore

        store_dir = str(tmp_path / "cli-store")
        args = ["example1", "--trials", "40", "--seed", "5", "--store", store_dir]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert len(ResultStore(store_dir).keys()) == 1
        assert main(args) == 0  # second run served from the store
        second = capsys.readouterr().out
        assert len(ResultStore(store_dir).keys()) == 1
        assert first == second


class TestSynthesizeAndSimulate:
    def test_synthesize_prints_design(self, capsys):
        code = main(["synthesize", "--probabilities", "a=0.3,b=0.7", "--pretty"])
        out = capsys.readouterr().out
        assert code == 0
        assert "outcomes : a, b" in out
        assert "initializing" in out

    def test_synthesize_writes_json_and_simulate_reads_it(self, tmp_path, capsys):
        design = tmp_path / "design.json"
        assert main(["synthesize", "--probabilities", "a=0.25,b=0.75",
                     "-o", str(design)]) == 0
        capsys.readouterr()
        assert design.exists()

        code = main(["simulate", str(design), "--trials", "150", "--seed", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Ensemble of 150 trials" in out
        assert "working[b]" in out

    def test_bad_probability_string(self, capsys):
        code = main(["synthesize", "--probabilities", "not-a-mapping"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_distribution_reports_error(self, capsys):
        code = main(["synthesize", "--probabilities", "a=0.5,b=0.9"])
        captured = capsys.readouterr()
        assert code == 1
        assert "error:" in captured.err


class TestSettle:
    def test_settle_logarithm(self, capsys):
        code = main(["settle", "--module", "logarithm", "--inputs", "x=16"])
        out = capsys.readouterr().out
        assert code == 0
        assert "'y': 4" in out

    def test_settle_linear_with_gain(self, capsys):
        code = main(["settle", "--module", "linear", "--alpha", "2", "--beta", "3",
                     "--inputs", "x=10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "'y': 15" in out

    def test_settle_polynomial(self, capsys):
        code = main(["settle", "--module", "polynomial", "--coefficients", "1,0,2",
                     "--inputs", "x=3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "'y': 19" in out

    def test_settle_isolation_no_inputs(self, capsys):
        code = main(["settle", "--module", "isolation"])
        assert code == 0
        assert "'y': 1" in capsys.readouterr().out


@pytest.fixture
def design_file(tmp_path):
    """A small saved design for simulate-subcommand smoke tests."""
    design = tmp_path / "design.json"
    assert main(["synthesize", "--probabilities", "a=0.4,b=0.6",
                 "-o", str(design)]) == 0
    return design


class TestEngineSelection:
    """The --engine / --workers / --tau-* knobs, backed by the registry."""

    def test_engines_subcommand_prints_capability_matrix(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for engine in ("direct", "batch-direct", "tau-leaping", "ode"):
            assert engine in out
        assert "TauLeapOptions" in out

    def test_engines_verbose_includes_summaries(self, capsys):
        assert main(["engines", "--verbose"]) == 0
        assert "lock-step" in capsys.readouterr().out

    def test_engines_reports_backend_availability_truthfully(self, capsys):
        from repro.sim import numba_available

        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        if numba_available():
            assert "numba*" not in out
            assert "declared but not available" not in out
        else:
            # Engines still *declare* numba, but the table must say it cannot
            # actually load here (requests fall back to numpy).
            assert "numba*" in out
            assert "declared but not available" in out
            assert "fall back to numpy" in out

    def test_simulate_mega_batch_flag(self, design_file, capsys):
        code = main(["simulate", str(design_file), "--trials", "300", "--seed", "7",
                     "--engine", "batch-direct", "--mega-batch", "100000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Ensemble of 300 trials" in out

    def test_mega_batch_rejected_for_per_trial_engine(self, design_file, capsys):
        code = main(["simulate", str(design_file), "--trials", "10", "--seed", "7",
                     "--engine", "direct", "--mega-batch", "1000"])
        captured = capsys.readouterr()
        assert code == 1
        assert "batched engine" in captured.err

    def test_simulate_batch_engine_with_workers(self, design_file, capsys):
        code = main(["simulate", str(design_file), "--trials", "120", "--seed", "7",
                     "--engine", "batch-direct", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Ensemble of 120 trials" in out

    def test_simulate_tau_options_are_threaded(self, design_file, capsys):
        code = main(["simulate", str(design_file), "--trials", "30", "--seed", "3",
                     "--engine", "tau-leaping",
                     "--tau-epsilon", "0.01", "--tau-n-critical", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Ensemble of 30 trials" in out

    def test_tau_options_require_tau_engine(self, design_file, capsys):
        code = main(["simulate", str(design_file), "--tau-epsilon", "0.01"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--engine tau-leaping" in captured.err

    def test_unknown_engine_suggests_closest_match(self, design_file, capsys):
        code = main(["simulate", str(design_file), "--engine", "dirct"])
        captured = capsys.readouterr()
        assert code == 1
        assert "unknown engine 'dirct'" in captured.err
        assert "did you mean 'direct'?" in captured.err

    def test_settle_with_ode_engine(self, capsys):
        code = main(["settle", "--module", "linear", "--beta", "2",
                     "--inputs", "x=10", "--engine", "ode"])
        out = capsys.readouterr().out
        assert code == 0
        assert "'y': 20" in out

    def test_settle_with_tau_options(self, capsys):
        code = main(["settle", "--module", "linear", "--inputs", "x=12",
                     "--engine", "tau-leaping", "--tau-epsilon", "0.01"])
        assert code == 0
        assert "'y':" in capsys.readouterr().out


class TestExperimentCommands:
    def test_figure3_small(self, capsys):
        code = main(["figure3", "--gammas", "1,100", "--trials", "80", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 3" in out
        assert "error %" in out

    def test_example1(self, capsys):
        code = main(["example1", "--trials", "120", "--seed", "9"])
        out = capsys.readouterr().out
        assert code == 0
        assert "TV distance" in out

    def test_example2(self, capsys):
        code = main(["example2", "--trials", "100", "--x1", "5", "--x2", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "X1=5" in out
        assert "TV distance" in out

    def test_figure5_minimal(self, capsys):
        code = main(["figure5", "--moi", "1,4,8", "--trials", "25", "--skip-natural"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 5" in out

    def test_example1_through_batch_engine(self, capsys):
        code = main(["example1", "--trials", "150", "--seed", "4",
                     "--engine", "batch-direct", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "TV distance" in out

    def test_example2_batch_engine(self, capsys):
        code = main(["example2", "--trials", "80", "--x1", "3", "--x2", "2",
                     "--engine", "batch-direct"])
        out = capsys.readouterr().out
        assert code == 0
        assert "X1=3" in out
        assert "TV distance" in out

    def test_figure3_with_engine_flag(self, capsys):
        code = main(["figure3", "--gammas", "10", "--trials", "40", "--seed", "2",
                     "--engine", "direct"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 3" in out

    def test_figure3_rejects_logless_engines(self, capsys):
        code = main(["figure3", "--gammas", "10", "--trials", "10",
                     "--engine", "batch-direct"])
        captured = capsys.readouterr()
        assert code == 1
        assert "firing log" in captured.err

    def test_figure5_tau_flags_validated(self, capsys):
        code = main(["figure5", "--moi", "1", "--trials", "5", "--skip-natural",
                     "--tau-epsilon", "0.01"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--engine tau-leaping" in captured.err
