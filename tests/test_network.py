"""Tests for repro.crn.network."""

from __future__ import annotations

import pytest

from repro.crn import Reaction, ReactionNetwork, Species
from repro.errors import CRNError, NetworkError, SpeciesError


@pytest.fixture
def simple_network() -> ReactionNetwork:
    return ReactionNetwork(
        [
            Reaction({"e1": 1}, {"d1": 1}, rate=1.0, name="init[1]", category="initializing"),
            Reaction({"e2": 1}, {"d2": 1}, rate=1.0, name="init[2]", category="initializing"),
            Reaction({"d1": 1, "d2": 1}, {}, rate=1e6, name="purify", category="purifying"),
        ],
        initial_state={"e1": 30, "e2": 70},
        name="simple",
    )


class TestConstruction:
    def test_size_and_species(self, simple_network):
        assert simple_network.size == 3
        assert {s.name for s in simple_network.species} == {"e1", "e2", "d1", "d2"}

    def test_initial_counts(self, simple_network):
        assert simple_network.initial_count("e1") == 30
        assert simple_network.initial_count("d1") == 0

    def test_add_reaction_returns_index(self, simple_network):
        index = simple_network.add_reaction(Reaction({"d1": 1}, {"o": 1}, rate=1.0))
        assert index == 3
        assert simple_network.size == 4

    def test_declared_species_kept(self):
        net = ReactionNetwork(species=["ghost"])
        assert Species("ghost") in net.species

    def test_initial_state_species_kept(self):
        net = ReactionNetwork(initial_state={"x": 3})
        assert Species("x") in net.species

    def test_add_non_reaction_rejected(self, simple_network):
        with pytest.raises(CRNError):
            simple_network.add_reaction("a -> b")

    def test_species_order_sorted(self, simple_network):
        names = [s.name for s in simple_network.species_order]
        assert names == sorted(names)


class TestQueries:
    def test_index_of(self, simple_network):
        assert simple_network.index_of("init[2]") == 1

    def test_index_of_missing_raises(self, simple_network):
        with pytest.raises(CRNError):
            simple_network.index_of("nope")

    def test_reactions_in_category(self, simple_network):
        pairs = simple_network.reactions_in_category("initializing")
        assert [index for index, _ in pairs] == [0, 1]

    def test_categories(self, simple_network):
        assert simple_network.categories() == {"initializing", "purifying"}

    def test_require_species_passes(self, simple_network):
        simple_network.require_species("e1", "d2")

    def test_require_species_raises(self, simple_network):
        with pytest.raises(SpeciesError):
            simple_network.require_species("e1", "missing")

    def test_initial_state_returns_copy(self, simple_network):
        state = simple_network.initial_state
        state["e1"] = 0
        assert simple_network.initial_count("e1") == 30


class TestTransformations:
    def test_copy_independent(self, simple_network):
        copy = simple_network.copy()
        copy.set_initial("e1", 99)
        assert simple_network.initial_count("e1") == 30

    def test_renamed(self, simple_network):
        renamed = simple_network.renamed({"e1": "input_a"})
        assert renamed.initial_count("input_a") == 30
        assert not renamed.has_species("e1")
        assert renamed.size == simple_network.size

    def test_renamed_merges_initials(self):
        net = ReactionNetwork(initial_state={"a": 2, "b": 3})
        merged = net.renamed({"b": "a"}, allow_merge=True)
        assert merged.initial_count("a") == 5

    def test_renamed_refuses_silent_merge(self):
        net = ReactionNetwork(initial_state={"a": 2, "b": 3})
        with pytest.raises(NetworkError, match="allow_merge"):
            net.renamed({"b": "a"})

    def test_renamed_refuses_colliding_targets(self):
        net = ReactionNetwork(initial_state={"a": 2, "b": 3, "c": 1})
        with pytest.raises(NetworkError, match="both map"):
            net.renamed({"a": "z", "b": "z"})

    def test_renamed_allows_swaps(self):
        net = ReactionNetwork(initial_state={"a": 2, "b": 3})
        swapped = net.renamed({"a": "b", "b": "a"})
        assert swapped.initial_count("a") == 3
        assert swapped.initial_count("b") == 2

    def test_merged(self, simple_network):
        other = ReactionNetwork(
            [Reaction({"x": 1}, {"y": 1}, rate=1.0)], initial_state={"x": 5, "e1": 1}
        )
        merged = simple_network.merged(other)
        assert merged.size == 4
        assert merged.initial_count("e1") == 31
        assert merged.initial_count("x") == 5

    def test_scaled_rates(self, simple_network):
        scaled = simple_network.scaled_rates(10.0)
        assert scaled.reaction(0).rate == pytest.approx(10.0)
        assert scaled.reaction(2).rate == pytest.approx(1e7)

    def test_equality(self, simple_network):
        assert simple_network == simple_network.copy()
        other = simple_network.copy()
        other.set_initial("e1", 1)
        assert simple_network != other


class TestRendering:
    def test_summary_mentions_counts(self, simple_network):
        text = simple_network.summary()
        assert "species   : 4" in text
        assert "reactions : 3" in text

    def test_pretty_lists_reactions(self, simple_network):
        text = simple_network.pretty()
        assert "e1 ->{1} d1" in text
        assert "initial state" in text

    def test_iteration_and_len(self, simple_network):
        assert len(list(simple_network)) == len(simple_network) == 3
