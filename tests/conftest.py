"""Shared fixtures for the test suite.

Monte-Carlo tests use small trial counts with fixed seeds and generous
tolerances; tight assertions are reserved for exact CTMC computations and for
deterministic structural checks.
"""

from __future__ import annotations

import pytest

from repro.core import DistributionSpec, OutcomeSpec, build_stochastic_module
from repro.crn import ReactionNetwork, parse_network


@pytest.fixture
def birth_death_network() -> ReactionNetwork:
    """A simple birth–death process: ∅ → x at rate 5, x → ∅ at rate 0.5."""
    return parse_network(
        """
        init: x = 0
        src ->{5} src + x
        x ->{0.5} 0
        init: src = 1
        """,
        name="birth-death",
    )


@pytest.fixture
def race_network() -> ReactionNetwork:
    """Three competing unimolecular conversions with a 3:4:3 quantity ratio."""
    return parse_network(
        """
        init: e1 = 30
        init: e2 = 40
        init: e3 = 30
        e1 ->{1} d1
        e2 ->{1} d2
        e3 ->{1} d3
        """,
        name="three-way-race",
    )


@pytest.fixture
def example1_spec() -> DistributionSpec:
    """The target distribution of the paper's Example 1: (0.3, 0.4, 0.3)."""
    return DistributionSpec(
        [OutcomeSpec("1"), OutcomeSpec("2"), OutcomeSpec("3")], [0.3, 0.4, 0.3]
    )


@pytest.fixture
def example1_network(example1_spec) -> ReactionNetwork:
    """The stochastic module of Example 1 (γ = 10³, scale 100)."""
    return build_stochastic_module(example1_spec, gamma=1e3, scale=100)


@pytest.fixture
def tiny_two_outcome_network() -> ReactionNetwork:
    """A 2-outcome stochastic module small enough for exact CTMC analysis."""
    spec = DistributionSpec(
        [OutcomeSpec("A", target_output=3), OutcomeSpec("B", target_output=3)],
        [0.25, 0.75],
    )
    return build_stochastic_module(spec, gamma=100.0, scale=4)
