"""Cross-engine statistical conformance against the exact FSP oracle.

Every stochastic engine in the registry must reproduce the *exact* outcome
distribution computed by the finite-state-projection solver, up to sampling
noise.  The tolerance is not hand-tuned: the test statistic is Pearson's
chi-squared against the expected outcome counts
(:func:`repro.analysis.ctmc.expected_outcome_counts` of the FSP-exact
probabilities), compared with the chi-squared quantile at significance
``ALPHA``.  Runs are seeded, so a passing threshold is deterministic — the
significance level only calibrates how much sampling noise the suite
tolerates, and a genuinely biased engine inflates the statistic linearly in
the trial count while the threshold stays fixed.

Adding a new stochastic engine to the registry automatically enrolls it here
(the parametrization is read from the live registry).  See ``docs/testing.md``
for the methodology and for when FSP beats sampling.
"""

from __future__ import annotations

import pytest
from scipy.stats import chi2

from repro.analysis.ctmc import expected_outcome_counts
from repro.api import Experiment
from repro.crn import parse_network
from repro.sim import OutcomeThresholds
from repro.sim.ensemble import EnsembleResult
from repro.sim.registry import registry

#: Significance level of the chi-squared conformance threshold.  With seeded
#: runs the suite is deterministic; 99.9% keeps the threshold meaningful while
#: leaving essentially no room for systematic engine bias.
ALPHA = 0.999

#: Trials per engine: enough for every outcome's expected count to clear the
#: classic chi-squared validity rule of thumb (≥ 5) by a wide margin.
TRIALS = 300


def stochastic_engines() -> list[str]:
    """Every sampling engine in the registry (exact and approximate)."""
    return [name for name in registry.names() if not registry.get(name).deterministic]


def chi_squared_statistic(ensemble: EnsembleResult, probabilities: dict[str, float]):
    """Pearson statistic of decided outcome counts vs exact probabilities."""
    counts = dict(ensemble.outcome_counts)
    counts.pop(EnsembleResult.UNDECIDED, None)
    n_decided = sum(counts.values())
    assert n_decided > 0, "no decided trials"
    expected = expected_outcome_counts(probabilities, n_decided)
    statistic = sum(
        (counts.get(label, 0) - expectation) ** 2 / expectation
        for label, expectation in expected.items()
        if expectation > 0
    )
    # Every decided outcome must be one the oracle gives positive mass.
    assert set(counts) <= {k for k, p in probabilities.items() if p > 0}
    return statistic, len(expected) - 1


class RaceToThreshold:
    """State classifier: first catalyst to reach ``level`` wins (picklable)."""

    def __init__(self, markers: dict[str, str], level: int) -> None:
        self.markers = markers
        self.level = level

    def __call__(self, state):
        for label, marker in self.markers.items():
            if state.get(marker, 0) >= self.level:
                return label
        return None


@pytest.fixture(scope="module")
def example1_oracle():
    """Example 1 experiment plus its FSP-exact outcome probabilities."""
    experiment = Experiment.from_distribution(
        {"1": 0.3, "2": 0.4, "3": 0.3}, gamma=1e3, scale=100
    )
    exact = experiment.simulate(engine="fsp").exact
    return experiment, exact


@pytest.fixture(scope="module")
def race_oracle():
    """3-outcome race to a threshold of 5 catalysts, with exact probabilities.

    Unlike Example 1 the exact distribution here is *not* the programmed
    0.3/0.4/0.3 — depleting input pools bend it toward the majority outcome
    (≈ 0.237/0.526/0.237) — so agreement genuinely exercises the solver, not
    just the first-firing formula.
    """
    network = parse_network(
        """
        init: e1 = 30
        init: e2 = 40
        init: e3 = 30
        e1 ->{1} d1
        e2 ->{1} d2
        e3 ->{1} d3
        """,
        name="race-to-5",
    )
    markers = {"1": "d1", "2": "d2", "3": "d3"}
    stopping = OutcomeThresholds(
        {label: (marker, 5) for label, marker in markers.items()}
    )
    experiment = (
        Experiment.from_network(network, stopping=stopping)
        .classify_states(RaceToThreshold(markers, 5))
    )
    exact = experiment.simulate(engine="fsp").exact
    return experiment, exact


@pytest.mark.parametrize("engine", stochastic_engines())
class TestConformance:
    def test_example1_module(self, engine, example1_oracle):
        experiment, exact = example1_oracle
        result = experiment.simulate(trials=TRIALS, engine=engine, seed=1007)
        statistic, dof = chi_squared_statistic(result.ensemble, exact)
        threshold = chi2.ppf(ALPHA, dof)
        assert statistic < threshold, (
            f"{engine}: chi2={statistic:.2f} exceeds chi2_{ALPHA}({dof})="
            f"{threshold:.2f} against FSP-exact {exact}"
        )

    def test_three_outcome_race(self, engine, race_oracle):
        experiment, exact = race_oracle
        result = experiment.simulate(trials=TRIALS, engine=engine, seed=2007)
        statistic, dof = chi_squared_statistic(result.ensemble, exact)
        threshold = chi2.ppf(ALPHA, dof)
        assert statistic < threshold, (
            f"{engine}: chi2={statistic:.2f} exceeds chi2_{ALPHA}({dof})="
            f"{threshold:.2f} against FSP-exact {exact}"
        )

    def test_every_trial_decides(self, engine, race_oracle):
        """The race network always produces an outcome — no undecided mass."""
        experiment, exact = race_oracle
        result = experiment.simulate(trials=50, engine=engine, seed=11)
        assert result.decided_fraction() == pytest.approx(1.0)
        assert sum(exact.values()) == pytest.approx(1.0, abs=1e-9)


def test_oracle_probabilities_are_exact(race_oracle):
    """The race oracle itself: nontrivial, normalized, symmetric in 1 ↔ 3."""
    _experiment, exact = race_oracle
    assert exact["1"] == pytest.approx(exact["3"], abs=1e-12)
    assert exact["2"] > 0.4  # majority advantage beyond the programmed 0.4
    assert sum(exact.values()) == pytest.approx(1.0, abs=1e-12)


def test_registry_parametrization_covers_all_samplers():
    """Guard: the suite enrolls every non-deterministic engine automatically."""
    engines = stochastic_engines()
    assert {"direct", "first-reaction", "next-reaction", "tau-leaping",
            "batch-direct"} <= set(engines)
    assert "ode" not in engines and "fsp" not in engines
