"""Cross-engine statistical conformance against the exact FSP oracle.

Every stochastic engine in the registry must reproduce the *exact* outcome
distribution computed by the finite-state-projection solver, up to sampling
noise.  The tolerance is not hand-tuned: the test statistic is Pearson's
chi-squared against the expected outcome counts
(:func:`repro.analysis.ctmc.expected_outcome_counts` of the FSP-exact
probabilities), compared with the chi-squared quantile at significance
``ALPHA``.  Runs are seeded, so a passing threshold is deterministic — the
significance level only calibrates how much sampling noise the suite
tolerates, and a genuinely biased engine inflates the statistic linearly in
the trial count while the threshold stays fixed.

Adding a new stochastic engine to the registry automatically enrolls it here
(the parametrization is read from the live registry).  See ``docs/testing.md``
for the methodology and for when FSP beats sampling.
"""

from __future__ import annotations

import zlib

import pytest
from scipy.stats import chi2

from repro.analysis.ctmc import expected_outcome_counts
from repro.api import Experiment
from repro.crn import parse_network
from repro.sim import OutcomeThresholds
from repro.sim.ensemble import EnsembleResult
from repro.sim.registry import registry
from repro.store.serialize import experiment_from_payload, experiment_to_payload
from repro.zoo.corpus import corpus_entries, trial_budget

#: Significance level of the chi-squared conformance threshold.  With seeded
#: runs the suite is deterministic; 99.9% keeps the threshold meaningful while
#: leaving essentially no room for systematic engine bias.
ALPHA = 0.999

#: Trials per engine: enough for every outcome's expected count to clear the
#: classic chi-squared validity rule of thumb (≥ 5) by a wide margin.
TRIALS = 300


def stochastic_engines() -> list[str]:
    """Every sampling engine in the registry (exact and approximate)."""
    return [name for name in registry.names() if not registry.get(name).deterministic]


def chi_squared_statistic(ensemble: EnsembleResult, probabilities: dict[str, float]):
    """Pearson statistic of decided outcome counts vs exact probabilities."""
    counts = dict(ensemble.outcome_counts)
    counts.pop(EnsembleResult.UNDECIDED, None)
    n_decided = sum(counts.values())
    assert n_decided > 0, "no decided trials"
    expected = expected_outcome_counts(probabilities, n_decided)
    statistic = sum(
        (counts.get(label, 0) - expectation) ** 2 / expectation
        for label, expectation in expected.items()
        if expectation > 0
    )
    # Every decided outcome must be one the oracle gives positive mass.
    assert set(counts) <= {k for k, p in probabilities.items() if p > 0}
    return statistic, len(expected) - 1


class RaceToThreshold:
    """State classifier: first catalyst to reach ``level`` wins (picklable)."""

    def __init__(self, markers: dict[str, str], level: int) -> None:
        self.markers = markers
        self.level = level

    def __call__(self, state):
        for label, marker in self.markers.items():
            if state.get(marker, 0) >= self.level:
                return label
        return None


@pytest.fixture(scope="module")
def example1_oracle():
    """Example 1 experiment plus its FSP-exact outcome probabilities."""
    experiment = Experiment.from_distribution(
        {"1": 0.3, "2": 0.4, "3": 0.3}, gamma=1e3, scale=100
    )
    exact = experiment.simulate(engine="fsp").exact
    return experiment, exact


@pytest.fixture(scope="module")
def race_oracle():
    """3-outcome race to a threshold of 5 catalysts, with exact probabilities.

    Unlike Example 1 the exact distribution here is *not* the programmed
    0.3/0.4/0.3 — depleting input pools bend it toward the majority outcome
    (≈ 0.237/0.526/0.237) — so agreement genuinely exercises the solver, not
    just the first-firing formula.
    """
    network = parse_network(
        """
        init: e1 = 30
        init: e2 = 40
        init: e3 = 30
        e1 ->{1} d1
        e2 ->{1} d2
        e3 ->{1} d3
        """,
        name="race-to-5",
    )
    markers = {"1": "d1", "2": "d2", "3": "d3"}
    stopping = OutcomeThresholds(
        {label: (marker, 5) for label, marker in markers.items()}
    )
    experiment = (
        Experiment.from_network(network, stopping=stopping)
        .classify_states(RaceToThreshold(markers, 5))
    )
    exact = experiment.simulate(engine="fsp").exact
    return experiment, exact


@pytest.mark.parametrize("engine", stochastic_engines())
class TestConformance:
    def test_example1_module(self, engine, example1_oracle):
        experiment, exact = example1_oracle
        result = experiment.simulate(trials=TRIALS, engine=engine, seed=1007)
        statistic, dof = chi_squared_statistic(result.ensemble, exact)
        threshold = chi2.ppf(ALPHA, dof)
        assert statistic < threshold, (
            f"{engine}: chi2={statistic:.2f} exceeds chi2_{ALPHA}({dof})="
            f"{threshold:.2f} against FSP-exact {exact}"
        )

    def test_three_outcome_race(self, engine, race_oracle):
        experiment, exact = race_oracle
        result = experiment.simulate(trials=TRIALS, engine=engine, seed=2007)
        statistic, dof = chi_squared_statistic(result.ensemble, exact)
        threshold = chi2.ppf(ALPHA, dof)
        assert statistic < threshold, (
            f"{engine}: chi2={statistic:.2f} exceeds chi2_{ALPHA}({dof})="
            f"{threshold:.2f} against FSP-exact {exact}"
        )

    def test_every_trial_decides(self, engine, race_oracle):
        """The race network always produces an outcome — no undecided mass."""
        experiment, exact = race_oracle
        result = experiment.simulate(trials=50, engine=engine, seed=11)
        assert result.decided_fraction() == pytest.approx(1.0)
        assert sum(exact.values()) == pytest.approx(1.0, abs=1e-9)


def test_oracle_probabilities_are_exact(race_oracle):
    """The race oracle itself: nontrivial, normalized, symmetric in 1 ↔ 3."""
    _experiment, exact = race_oracle
    assert exact["1"] == pytest.approx(exact["3"], abs=1e-12)
    assert exact["2"] > 0.4  # majority advantage beyond the programmed 0.4
    assert sum(exact.values()) == pytest.approx(1.0, abs=1e-12)


def test_registry_parametrization_covers_all_samplers():
    """Guard: the suite enrolls every non-deterministic engine automatically."""
    engines = stochastic_engines()
    assert {"direct", "first-reaction", "next-reaction", "tau-leaping",
            "batch-direct"} <= set(engines)
    assert "ode" not in engines and "fsp" not in engines


# ---------------------------------------------------------------------------
# the standing conformance corpus: every enrolled zoo/generated model, every
# stochastic engine, against the FSP oracle (see docs/testing.md)
# ---------------------------------------------------------------------------

CORPUS = corpus_entries()

_ORACLE_CACHE: dict[str, dict[str, float]] = {}


def corpus_oracle(entry) -> dict[str, float]:
    """FSP-exact outcome probabilities, solved once per model per session."""
    if entry.name not in _ORACLE_CACHE:
        model = entry.model
        result = model.experiment().simulate(
            engine="fsp", engine_options=model.fsp_options()
        )
        _ORACLE_CACHE[entry.name] = dict(result.exact)
    return dict(_ORACLE_CACHE[entry.name])


def corpus_seed(name: str, salt: int = 0) -> int:
    """A stable per-model seed (independent of corpus ordering)."""
    return (zlib.crc32(name.encode()) + salt * 7919) % (2**31 - 1)


def test_corpus_enrollment_floor():
    """The corpus holds at least 8 models, from both sources, all distinct."""
    names = [entry.name for entry in CORPUS]
    assert len(names) == len(set(names))
    assert len(names) >= 8
    sources = {entry.source for entry in CORPUS}
    assert sources == {"zoo", "generated"}


@pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
class TestCorpusOracle:
    def test_oracle_fully_decides(self, entry):
        """Enrolled models leak no probability mass: every outcome is reachable
        and the undecided label never appears (the generator's pigeonhole
        guarantee; curated models are constructed the same way)."""
        exact = corpus_oracle(entry)
        assert exact.pop(EnsembleResult.UNDECIDED, 0.0) == pytest.approx(0.0, abs=1e-9)
        assert set(exact) == {outcome.label for outcome in entry.model.outcomes}
        assert sum(exact.values()) == pytest.approx(1.0, abs=1e-9)
        assert min(exact.values()) > 0.0

    def test_trial_budget_gives_chi_squared_power(self, entry):
        """The derived budget puts every expected cell count above the floor."""
        exact = corpus_oracle(entry)
        exact.pop(EnsembleResult.UNDECIDED, None)
        policy = entry.model.conformance
        budget = trial_budget(exact, policy.min_expected, policy.max_trials)
        assert budget <= policy.max_trials
        assert budget * min(p for p in exact.values() if p > 0) >= 5

    def test_store_payload_round_trip(self, entry):
        """Corpus experiments fingerprint canonically: payload → experiment →
        payload is byte-identical, for both a sampling and the exact engine
        (exercising the threshold stopping and threshold-race classifier
        descriptors every model relies on)."""
        experiment = entry.model.experiment()
        for engine in ("direct", "fsp"):
            payload = experiment_to_payload(
                experiment, trials=50, engine=engine, seed=13
            )
            rebuilt = experiment_from_payload(payload)
            again = experiment_to_payload(rebuilt, trials=50, engine=engine, seed=13)
            assert again == payload


@pytest.mark.parametrize("engine", stochastic_engines())
@pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
class TestCorpusConformance:
    def test_engine_matches_oracle(self, entry, engine):
        exact = corpus_oracle(entry)
        exact.pop(EnsembleResult.UNDECIDED, None)
        policy = entry.model.conformance
        budget = trial_budget(exact, policy.min_expected, policy.max_trials)
        result = entry.model.experiment().simulate(
            trials=budget, engine=engine, seed=corpus_seed(entry.name)
        )
        assert result.decided_fraction() == pytest.approx(1.0)
        statistic, dof = chi_squared_statistic(result.ensemble, exact)
        threshold = chi2.ppf(ALPHA, dof)
        assert statistic < threshold, (
            f"{entry.name} [{entry.source}] on {engine}: chi2={statistic:.2f} "
            f"exceeds chi2_{ALPHA}({dof})={threshold:.2f} against FSP-exact {exact}"
        )

    def test_engine_is_deterministic_on_corpus(self, entry, engine):
        """Same model, same seed, same engine → identical outcome counts."""
        experiment = entry.model.experiment()
        seed = corpus_seed(entry.name, salt=1)
        first = experiment.simulate(trials=40, engine=engine, seed=seed)
        second = experiment.simulate(trials=40, engine=engine, seed=seed)
        assert dict(first.ensemble.outcome_counts) == dict(
            second.ensemble.outcome_counts
        )
