"""Tests for tau-leaping, the mean-field ODE integrator, and dependency graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crn import parse_network
from repro.errors import SimulationError
from repro.sim import (
    OdeIntegrator,
    SpeciesThreshold,
    TauLeapingSimulator,
    TauLeapOptions,
    dependency_graph,
    dependency_stats,
    simulate_ode,
)


@pytest.fixture
def production_decay():
    """src -> src + x at 50/s, x -> 0 at 1/s: stationary mean 50."""
    return parse_network("src ->{50} src + x\nx ->{1} 0\ninit: src = 1")


class TestTauLeaping:
    def test_stationary_mean_matches(self, production_decay):
        simulator = TauLeapingSimulator(production_decay, seed=3)
        finals = [
            simulator.run(max_time=20.0).final_count("x") for _ in range(30)
        ]
        assert np.mean(finals) == pytest.approx(50.0, rel=0.15)

    def test_no_negative_counts(self, production_decay):
        simulator = TauLeapingSimulator(production_decay, seed=4)
        trajectory = simulator.run(max_time=5.0, record_states=True)
        assert np.all(trajectory.state_snapshots >= 0)

    def test_threshold_condition_checked_at_leap_boundaries(self, production_decay):
        simulator = TauLeapingSimulator(production_decay, seed=5)
        trajectory = simulator.run(stopping=SpeciesThreshold("x", 30), max_time=50.0)
        assert trajectory.stop_reason == "condition"
        assert trajectory.final_count("x") >= 30

    def test_exhaustion(self):
        net = parse_network("x ->{1} 0\ninit: x = 200")
        trajectory = TauLeapingSimulator(net, seed=6).run(max_time=1e6)
        assert trajectory.final_count("x") == 0
        assert trajectory.stop_reason == "exhausted"
        assert trajectory.firing_counts[0] == 200

    def test_small_systems_fall_back_to_exact_steps(self):
        # With a handful of molecules the selected tau is tiny, so the engine
        # should silently take exact steps and still finish correctly.
        net = parse_network("a + b ->{1} c\ninit: a = 3\ninit: b = 3")
        trajectory = TauLeapingSimulator(net, seed=7).run(max_time=100.0)
        assert trajectory.final_count("c") == 3

    def test_options_dataclass(self):
        options = TauLeapOptions(epsilon=0.01)
        simulator = TauLeapingSimulator(
            parse_network("x ->{1} 0\ninit: x = 10"), seed=1, leap_options=options
        )
        assert simulator.leap_options.epsilon == 0.01


class TestOde:
    def test_exponential_decay(self):
        net = parse_network("x ->{2} 0\ninit: x = 100")
        result = simulate_ode(net, t_final=1.0, n_points=50)
        assert result.final("x") == pytest.approx(100 * np.exp(-2.0), rel=1e-3)

    def test_production_decay_steady_state(self, production_decay):
        result = simulate_ode(production_decay, t_final=20.0)
        assert result.final("x") == pytest.approx(50.0, rel=1e-2)

    def test_conversion_conserves_total(self):
        net = parse_network("x ->{1} y\ninit: x = 40")
        result = simulate_ode(net, t_final=5.0)
        totals = result.series("x") + result.series("y")
        np.testing.assert_allclose(totals, 40.0, rtol=1e-4)

    def test_series_unknown_species_raises(self, production_decay):
        result = simulate_ode(production_decay, t_final=1.0)
        with pytest.raises(SimulationError):
            result.series("nope")

    def test_invalid_time_raises(self, production_decay):
        with pytest.raises(SimulationError):
            OdeIntegrator(production_decay).run(t_final=0.0)

    def test_initial_state_override(self):
        net = parse_network("x ->{1} 0\ninit: x = 100")
        result = simulate_ode(net, t_final=0.5, initial_state={"x": 10})
        assert result.series("x")[0] == pytest.approx(10.0)

    def test_final_state_dict(self, production_decay):
        result = simulate_ode(production_decay, t_final=1.0)
        final = result.final_state()
        assert set(final) == {"src", "x"}
        assert final["src"] == pytest.approx(1.0)

    def test_mean_field_misses_stochastic_choice(self, example1_network):
        """The mean-field prediction is deterministic — no distribution at all.

        Integrated as ODEs, the stochastic module always resolves the same
        way (the majority input, outcome 2, wins every time), whereas the
        stochastic semantics produce outcome 2 only 40% of the time.  This is
        the paper's motivation for discrete stochastic treatment.
        """
        first = simulate_ode(example1_network, t_final=50.0)
        second = simulate_ode(example1_network, t_final=50.0)
        finals_first = {i: first.final(f"d_{i}") for i in (1, 2, 3)}
        finals_second = {i: second.final(f"d_{i}") for i in (1, 2, 3)}
        # Identical every run (no randomness) ...
        for i in (1, 2, 3):
            assert finals_first[i] == pytest.approx(finals_second[i], rel=1e-9)
        # ... and the majority outcome dominates deterministically.
        assert finals_first[2] > finals_first[1]
        assert finals_first[2] > finals_first[3]


class TestDependencyGraph:
    def test_graph_structure(self, example1_network):
        graph = dependency_graph(example1_network)
        assert graph.number_of_nodes() == example1_network.size
        # every node depends on itself
        assert all(graph.has_edge(node, node) for node in graph.nodes)

    def test_stats(self, example1_network):
        stats = dependency_stats(example1_network)
        assert stats.n_reactions == example1_network.size
        assert 0 < stats.density <= 1.0
        assert stats.max_out_degree >= 1
        assert stats.mean_out_degree <= stats.max_out_degree

    def test_sparse_chain_is_sparse(self):
        net = parse_network("a ->{1} b\nb ->{1} c\nc ->{1} d\nd ->{1} e\ninit: a = 1")
        stats = dependency_stats(net)
        assert stats.max_out_degree == 2
