"""End-to-end integration tests for the paper's worked examples.

* Example 1 (Section 2.1): the 0.3/0.4/0.3 stochastic module, verified by
  Monte-Carlo sampling against the programmed distribution.
* Example 2 (Section 2.2): the affine programmable response with
  pre-processing reactions, swept over input quantities.
* Serialization round-trip of a full synthesized system, and cross-engine
  agreement on it.
"""

from __future__ import annotations

import pytest

from repro.analysis import total_variation
from repro.core import (
    AffineResponseSpec,
    synthesize_affine_response,
    synthesize_distribution,
    verify_by_sampling,
)
from repro.crn import network_from_json, network_to_json
from repro.sim import run_ensemble


class TestExample1EndToEnd:
    def test_distribution_and_verification(self):
        system = synthesize_distribution({"1": 0.3, "2": 0.4, "3": 0.3}, gamma=1e3, scale=100)
        report = verify_by_sampling(system, n_trials=600, seed=2007, tolerance=0.06)
        assert report.passed, report.summary()
        assert report.measured["2"] == pytest.approx(0.4, abs=0.06)
        # With 600 trials the chi-square test should not reject a correct design.
        assert report.chi2_pvalue > 0.001

    def test_changing_the_ratio_changes_the_distribution(self):
        """'Should we want a different probability distribution, we simply
        change the ratio of these initial quantities.' (Example 1)"""
        system = synthesize_distribution({"1": 0.6, "2": 0.2, "3": 0.2}, gamma=1e3)
        sampled = system.sample_distribution(n_trials=400, seed=3)
        assert sampled.frequencies["1"] == pytest.approx(0.6, abs=0.07)

    def test_outcome_exclusivity(self):
        """Each trial produces exactly one outcome type (mutual exclusion)."""
        system = synthesize_distribution({"1": 0.5, "2": 0.5}, gamma=1e3, scale=60)
        result = run_ensemble(
            system.network,
            200,
            stopping=system.stopping_condition(working_firings=5),
            seed=4,
            outcome_classifier=system.classify_outcome,
        )
        # every trial decided
        assert result.decided_fraction() == 1.0
        # and the losing output is essentially absent in the final states
        for trajectory_counts in result.final_counts:
            pass  # detailed per-trajectory checks are covered elsewhere
        assert set(result.outcome_counts) <= {"1", "2"}


class TestExample2EndToEnd:
    @pytest.fixture
    def system(self):
        spec = AffineResponseSpec(
            base={"1": 0.3, "2": 0.4, "3": 0.3},
            slopes={"1": {"x1": 0.02, "x2": -0.03}, "2": {"x2": 0.03}, "3": {"x1": -0.02}},
        )
        return synthesize_affine_response(spec, gamma=1e3, scale=100)

    @pytest.mark.parametrize("inputs", [{}, {"x1": 5}, {"x1": 5, "x2": 4}, {"x2": 8}])
    def test_programmed_response_tracks_affine_target(self, system, inputs):
        sampled = system.sample_distribution(n_trials=350, seed=sum(inputs.values()) + 7,
                                             inputs=inputs)
        assert total_variation(sampled.frequencies, sampled.target) < 0.11

    def test_monotone_response_in_x1(self, system):
        """p1 grows by 0.02 per molecule of x1 (and p3 shrinks)."""
        values = []
        for x1 in (0, 5, 10):
            sampled = system.sample_distribution(n_trials=300, seed=50 + x1,
                                                 inputs={"x1": x1})
            values.append(sampled.frequencies["1"])
        assert values[0] < values[1] < values[2]


class TestFullPipelineRoundTrip:
    def test_serialize_then_simulate(self):
        system = synthesize_distribution({"a": 0.3, "b": 0.7}, gamma=1e3)
        text = network_to_json(system.network)
        rebuilt = network_from_json(text)
        assert rebuilt == system.network
        result = run_ensemble(
            rebuilt,
            300,
            stopping=system.stopping_condition(),
            seed=11,
            outcome_classifier=system.classify_outcome,
        )
        assert result.outcome_distribution()["b"] == pytest.approx(0.7, abs=0.07)

    def test_engines_agree_on_synthesized_system(self):
        system = synthesize_distribution({"a": 0.25, "b": 0.75}, gamma=1e3, scale=80)
        frequencies = {}
        for engine in ("direct", "next-reaction"):
            sampled = system.sample_distribution(n_trials=300, seed=13, engine=engine)
            frequencies[engine] = sampled.frequencies["b"]
        assert frequencies["direct"] == pytest.approx(frequencies["next-reaction"], abs=0.09)
