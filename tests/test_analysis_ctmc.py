"""Tests for exact CTMC outcome-probability analysis (repro.analysis.ctmc)."""

from __future__ import annotations

import pytest

from repro.analysis import outcome_probabilities, expected_outcome_counts
from repro.analysis.ctmc import UNDECIDED
from repro.core import DistributionSpec, OutcomeSpec, build_stochastic_module
from repro.crn import parse_network
from repro.errors import CTMCError


class TestSimpleChains:
    def test_two_way_race_exact(self):
        """First-firing race at quantities 30/70 → exactly 0.3 / 0.7."""
        network = parse_network(
            """
            init: ea = 30
            init: eb = 70
            ea ->{1} wa
            eb ->{1} wb
            """
        )
        result = outcome_probabilities(
            network,
            classify=lambda s: "A" if s.get("wa", 0) >= 1 else ("B" if s.get("wb", 0) >= 1 else None),
        )
        assert result.probability("A") == pytest.approx(0.3, abs=1e-12)
        assert result.probability("B") == pytest.approx(0.7, abs=1e-12)
        assert result.n_transient == 1

    def test_rates_weight_the_race(self):
        network = parse_network(
            """
            init: x = 1
            x ->{3} a
            x ->{1} b
            """
        )
        result = outcome_probabilities(
            network,
            classify=lambda s: "a" if s.get("a", 0) else ("b" if s.get("b", 0) else None),
        )
        assert result.probability("a") == pytest.approx(0.75)

    def test_multi_step_race(self):
        """Two sequential slow steps vs one: P(two-step path wins) computable exactly.

        x -> m -> a (each rate 1) races x2 -> b (rate 1); check against the
        analytic value 1/4 (the single-step branch must beat two Exp(1) stages
        ... actually P(b first) = 1/2 + 1/2·1/2 = 3/4).
        """
        network = parse_network(
            """
            init: x = 1
            init: x2 = 1
            x ->{1} m
            m ->{1} a
            x2 ->{1} b
            """
        )
        result = outcome_probabilities(
            network,
            classify=lambda s: "a" if s.get("a", 0) else ("b" if s.get("b", 0) else None),
        )
        assert result.probability("b") == pytest.approx(0.75, abs=1e-9)
        assert result.probability("a") == pytest.approx(0.25, abs=1e-9)

    def test_undecided_dead_end(self):
        network = parse_network(
            """
            init: x = 1
            x ->{1} a
            x ->{1} junk
            """
        )
        result = outcome_probabilities(
            network, classify=lambda s: "a" if s.get("a", 0) else None
        )
        assert result.probability("a") == pytest.approx(0.5)
        assert result.probability(UNDECIDED) == pytest.approx(0.5)
        # decided() renormalizes over real outcomes only.
        assert result.decided()["a"] == pytest.approx(1.0)

    def test_initial_state_already_classified(self):
        network = parse_network("x ->{1} y\ninit: x = 1")
        result = outcome_probabilities(network, classify=lambda s: "done")
        assert result.probabilities == {"done": 1.0}

    def test_state_budget_enforced(self):
        network = parse_network("src ->{1} src + x\ninit: src = 1")
        with pytest.raises(CTMCError):
            outcome_probabilities(network, classify=lambda s: None, max_states=50)

    def test_expected_counts(self):
        network = parse_network("init: x = 1\nx ->{1} a\nx ->{3} b")
        result = outcome_probabilities(
            network,
            classify=lambda s: "a" if s.get("a", 0) else ("b" if s.get("b", 0) else None),
        )
        counts = expected_outcome_counts(result, 400)
        assert counts["a"] == pytest.approx(100.0)
        with pytest.raises(CTMCError):
            expected_outcome_counts(result, 0)


class TestStochasticModuleExact:
    def test_tiny_module_matches_programmed_distribution(self, tiny_two_outcome_network):
        """Exact absorption probabilities of a small stochastic module.

        With γ=100 the winner-take-all error is small, so the probability that
        catalyst A is the sole survivor must be close to the programmed 0.25.
        This is an exact computation — no sampling noise.
        """
        network = tiny_two_outcome_network

        def classify(state):
            # Outcome = which catalyst type survives once every input molecule
            # has been consumed.
            if state.get("e_A", 0) == 0 and state.get("e_B", 0) == 0:
                a, b = state.get("d_A", 0), state.get("d_B", 0)
                if a > 0 and b == 0:
                    return "A"
                if b > 0 and a == 0:
                    return "B"
                if a == 0 and b == 0:
                    return "tie"
            return None

        result = outcome_probabilities(network, classify=classify, max_states=100_000)
        decided = result.decided()
        assert decided.get("A", 0.0) == pytest.approx(0.25, abs=0.06)
        assert decided.get("B", 0.0) == pytest.approx(0.75, abs=0.06)

    def test_exact_distribution_improves_with_gamma(self):
        """A symmetric 2-outcome module: exact symmetry, and the probability of
        a dead-heat ("tie": both catalysts annihilated) shrinks as γ grows."""

        def analyze(gamma: float) -> dict[str, float]:
            spec = DistributionSpec(
                [OutcomeSpec("A", target_output=2), OutcomeSpec("B", target_output=2)],
                [0.5, 0.5],
            )
            network = build_stochastic_module(spec, gamma=gamma, scale=4)

            def classify(state):
                if state.get("e_A", 0) == 0 and state.get("e_B", 0) == 0:
                    a, b = state.get("d_A", 0), state.get("d_B", 0)
                    if a > 0 and b == 0:
                        return "A"
                    if b > 0 and a == 0:
                        return "B"
                    if a == b == 0:
                        return "tie"
                return None

            return outcome_probabilities(network, classify=classify).probabilities

        low_gamma = analyze(10.0)
        high_gamma = analyze(1000.0)
        # Exact symmetry between the two outcomes at any gamma.
        assert low_gamma.get("A", 0.0) == pytest.approx(low_gamma.get("B", 0.0), abs=1e-9)
        assert high_gamma.get("A", 0.0) == pytest.approx(high_gamma.get("B", 0.0), abs=1e-9)
        # Dead-heat mass shrinks as the purifying tier gets relatively faster.
        assert high_gamma.get("tie", 0.0) <= low_gamma.get("tie", 0.0) + 1e-12
