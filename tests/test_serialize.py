"""Tests for JSON serialization of networks (repro.crn.serialize)."""

from __future__ import annotations

import json

import pytest

from repro.crn import (
    Reaction,
    ReactionNetwork,
    load_network,
    network_from_dict,
    network_from_json,
    network_to_dict,
    network_to_json,
    save_network,
)
from repro.crn.serialize import reaction_from_dict, reaction_to_dict
from repro.errors import SerializationError


class TestReactionRoundTrip:
    def test_roundtrip(self):
        r = Reaction({"a": 1, "b": 2}, {"c": 1}, rate=2.5, name="r", category="cat")
        assert reaction_from_dict(reaction_to_dict(r)) == r

    def test_missing_rate_raises(self):
        with pytest.raises(SerializationError):
            reaction_from_dict({"reactants": {"a": 1}, "products": {}})

    def test_malformed_counts_raise(self):
        with pytest.raises(SerializationError):
            reaction_from_dict({"reactants": {"a": "x"}, "products": {}, "rate": 1.0})


class TestNetworkRoundTrip:
    def test_dict_roundtrip(self, example1_network):
        data = network_to_dict(example1_network)
        rebuilt = network_from_dict(data)
        assert rebuilt == example1_network
        assert rebuilt.name == example1_network.name

    def test_json_roundtrip(self, race_network):
        rebuilt = network_from_json(network_to_json(race_network))
        assert rebuilt == race_network

    def test_json_is_valid_and_sorted(self, race_network):
        payload = json.loads(network_to_json(race_network))
        assert "reactions" in payload and "initial_state" in payload

    def test_file_roundtrip(self, tmp_path, race_network):
        path = save_network(race_network, tmp_path / "net.json")
        assert path.exists()
        assert load_network(path) == race_network

    def test_missing_reactions_key(self):
        with pytest.raises(SerializationError):
            network_from_dict({"name": "x"})

    def test_invalid_json_text(self):
        with pytest.raises(SerializationError):
            network_from_json("{not json")

    def test_metadata_stringified(self):
        net = ReactionNetwork(
            [Reaction({"a": 1}, {"b": 1}, rate=1.0)],
            metadata={"gamma": 1e3, "nested": {"x": (1, 2)}, "obj": object()},
        )
        data = network_to_dict(net)
        # Must be JSON serializable end to end.
        json.dumps(data)

    def test_declared_species_survive(self):
        net = ReactionNetwork([Reaction({"a": 1}, {"b": 1}, rate=1.0)], species=["ghost"])
        rebuilt = network_from_dict(network_to_dict(net))
        assert rebuilt.has_species("ghost")
