"""Tests for the columnar batch sweep, mega-batch mode and buffer reuse.

The batch-direct engine's hot path is now a single columnar sweep
(:func:`repro.sim.kernels.batch.run_batch_sweep` on numpy, a fused JIT
kernel on numba) over buffers allocated once per engine and reused across
chunks and adaptive doubling rounds.  This module covers:

* sweep mechanics — every stop reason, the t=0 condition pre-pass, and
  statistical agreement with the per-trial direct method;
* mega-batch mode — ``SimulationOptions.mega_batch`` /
  ``Experiment.simulate(mega_batch=)`` reshaping the worker-invariant chunk
  schedule, including under the adaptive controller;
* buffer reuse — one allocation per engine no matter how many chunks or
  doubling rounds run;
* scale regressions — batches wider than the random-block cap and networks
  wider than the PR-4 9000-reaction refill regression;
* numpy ↔ numba bit-identity of whole batches (skipped without numba).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Experiment
from repro.crn import Reaction, ReactionNetwork, parse_network
from repro.errors import EnsembleError, SimulationError
from repro.sim import (
    BatchDirectEngine,
    EnsembleRunner,
    OutcomeThresholds,
    ParallelEnsembleRunner,
    SimulationOptions,
    SpeciesThreshold,
    StopReason,
    numba_available,
)
from repro.sim.kernels.batch import BatchBuffers, batch_random_blocks


@pytest.fixture
def race_network():
    return parse_network(
        """
        init: ea = 70
        init: eb = 30
        ea ->{1} wa
        eb ->{1} wb
        """
    )


@pytest.fixture
def race_condition():
    return OutcomeThresholds({"A": ("wa", 1), "B": ("wb", 1)})


# ---------------------------------------------------------------------------
# sweep mechanics
# ---------------------------------------------------------------------------


class TestSweepMechanics:
    def test_compilable_condition_uses_sweep(self, race_network, race_condition):
        engine = BatchDirectEngine(race_network, seed=1)
        assert engine._sweep_buffers.allocations == 0
        batch = engine.run_batch(64, stopping=race_condition)
        assert engine._sweep_buffers.allocations == 1
        assert set(batch.stop_details) <= {"A", "B"}
        assert all(reason == StopReason.CONDITION for reason in batch.stop_reasons)

    def test_generic_condition_skips_sweep_buffers(self, race_network):
        from repro.sim.events import PredicateCondition

        engine = BatchDirectEngine(race_network, seed=1)
        condition = PredicateCondition(
            lambda time, state: "pred" if state.get("wa", 0) >= 1 else None
        )
        batch = engine.run_batch(16, stopping=condition)
        assert engine._sweep_buffers.allocations == 0  # interpreted fallback
        assert batch.n_trials == 16

    def test_exhaustion_stop(self, race_network):
        engine = BatchDirectEngine(race_network, seed=2)
        batch = engine.run_batch(32)
        assert all(reason == StopReason.EXHAUSTED for reason in batch.stop_reasons)
        # Conservation: every starting molecule converted to its product.
        totals = batch.final_counts.sum(axis=1)
        np.testing.assert_array_equal(totals, np.full(32, 100))

    def test_max_time_stop(self, race_network):
        engine = BatchDirectEngine(race_network, seed=3)
        batch = engine.run_batch(32, max_time=1e-4)
        assert all(reason == StopReason.MAX_TIME for reason in batch.stop_reasons)
        np.testing.assert_allclose(batch.final_times, 1e-4)

    def test_max_steps_stop(self, race_network):
        engine = BatchDirectEngine(race_network, seed=4)
        batch = engine.run_batch(32, max_steps=5)
        assert all(reason == StopReason.MAX_STEPS for reason in batch.stop_reasons)
        np.testing.assert_array_equal(batch.firing_counts.sum(axis=1), np.full(32, 5))

    def test_condition_already_met_at_t0(self, race_network):
        engine = BatchDirectEngine(race_network, seed=5)
        batch = engine.run_batch(8, stopping=SpeciesThreshold("ea", 50))
        assert all(reason == StopReason.CONDITION for reason in batch.stop_reasons)
        assert batch.firing_counts.sum() == 0  # no randomness consumed

    def test_seeded_sweep_is_reproducible(self, race_network, race_condition):
        first = BatchDirectEngine(race_network, seed=6).run_batch(
            200, stopping=race_condition
        )
        second = BatchDirectEngine(race_network, seed=6).run_batch(
            200, stopping=race_condition
        )
        np.testing.assert_array_equal(first.final_counts, second.final_counts)
        np.testing.assert_array_equal(first.final_times, second.final_times)
        np.testing.assert_array_equal(first.firing_counts, second.firing_counts)
        assert list(first.stop_details) == list(second.stop_details)

    def test_sweep_matches_direct_method_chi_squared(self, race_network, race_condition):
        """First-firing win probability is 0.7; chi-squared df=1 at 99.9% is 10.83."""
        engine = BatchDirectEngine(race_network, seed=7)
        batch = engine.run_batch(2000, stopping=race_condition)
        wins_a = sum(1 for detail in batch.stop_details if detail == "A")
        expected = 2000 * 0.7
        statistic = (wins_a - expected) ** 2 / expected + (
            (2000 - wins_a) - 2000 * 0.3
        ) ** 2 / (2000 * 0.3)
        assert statistic < 10.83


# ---------------------------------------------------------------------------
# buffer reuse
# ---------------------------------------------------------------------------


class TestBufferReuse:
    def test_buffers_allocate_once_across_runs(self, race_network, race_condition):
        engine = BatchDirectEngine(race_network, seed=1)
        for _ in range(4):
            engine.run_batch(128, stopping=race_condition)
        assert engine._sweep_buffers.allocations == 1

    def test_buffers_grow_only_when_capacity_exceeded(self, race_network, race_condition):
        engine = BatchDirectEngine(race_network, seed=1)
        engine.run_batch(64, stopping=race_condition)
        engine.run_batch(32, stopping=race_condition)  # fits: no realloc
        assert engine._sweep_buffers.allocations == 1
        engine.run_batch(256, stopping=race_condition)  # wider: one realloc
        assert engine._sweep_buffers.allocations == 2

    def test_ensemble_runner_reuses_one_engine(self, race_network, race_condition):
        runner = EnsembleRunner(
            race_network, engine="batch-direct", stopping=race_condition
        )
        runner.run(100, seed=3)
        engine = runner._batch_engine
        assert engine is not None
        runner.run(100, seed=4)
        assert runner._batch_engine is engine
        assert engine._sweep_buffers.allocations == 1

    def test_chunked_inline_run_allocates_once(self, race_network, race_condition):
        runner = ParallelEnsembleRunner(
            race_network,
            engine="batch-direct",
            stopping=race_condition,
            workers=1,
            chunk_size=64,
        )
        runner.run(512, seed=5)  # 8 chunks through one engine
        assert runner._batch_engine._sweep_buffers.allocations == 1

    def test_adaptive_doubling_rounds_reuse_buffers(self, race_network, race_condition):
        from repro.adaptive import CiHalfWidthTarget
        from repro.adaptive.controller import AdaptiveController

        runner = ParallelEnsembleRunner(
            race_network,
            engine="batch-direct",
            stopping=race_condition,
            workers=1,
            chunk_size=64,
        )
        target = CiHalfWidthTarget(outcome="A", half_width=0.03, max_trials=8192)
        merged, info = AdaptiveController(runner, target).run(9)
        assert info.rounds >= 2  # doubling actually happened
        assert runner._batch_engine._sweep_buffers.allocations == 1

    def test_batch_buffers_reset_clears_previous_run(self):
        buffers = BatchBuffers()
        buffers.ensure(4, 2, 3)
        buffers.counts[:] = 9
        buffers.steps[:] = 7
        buffers.reset(4, np.array([1, 2], dtype=np.int64))
        np.testing.assert_array_equal(buffers.counts[:4], np.tile([1, 2], (4, 1)))
        assert buffers.steps[:4].sum() == 0
        assert buffers.stop_codes[:4].min() == buffers.stop_codes[:4].max()


# ---------------------------------------------------------------------------
# mega-batch mode
# ---------------------------------------------------------------------------


class TestMegaBatch:
    def test_options_validation(self):
        assert SimulationOptions(mega_batch=100_000).mega_batch == 100_000
        with pytest.raises(SimulationError, match="mega_batch"):
            SimulationOptions(mega_batch=0)
        with pytest.raises(SimulationError, match="mega_batch"):
            SimulationOptions(mega_batch=-5)
        with pytest.raises(SimulationError, match="mega_batch"):
            SimulationOptions(mega_batch=2.5)

    def test_rejected_for_per_trial_engines(self, race_network):
        with pytest.raises(EnsembleError, match="batched engine"):
            EnsembleRunner(
                race_network,
                engine="direct",
                options=SimulationOptions(record_firings=False, mega_batch=1000),
            )

    def test_overrides_chunk_size(self, race_network, race_condition):
        runner = ParallelEnsembleRunner(
            race_network,
            engine="batch-direct",
            stopping=race_condition,
            options=SimulationOptions(record_firings=False, mega_batch=100_000),
            workers=1,
            chunk_size=512,
        )
        assert runner.chunk_size == 100_000

    def test_worker_invariance(self, race_network, race_condition):
        def run(workers):
            return ParallelEnsembleRunner(
                race_network,
                engine="batch-direct",
                stopping=race_condition,
                options=SimulationOptions(record_firings=False, mega_batch=700),
                workers=workers,
            ).run(2000, seed=17)

        sequential, parallel = run(1), run(2)
        assert sequential.outcome_counts == parallel.outcome_counts
        np.testing.assert_array_equal(sequential.final_counts, parallel.final_counts)
        np.testing.assert_array_equal(sequential.final_times, parallel.final_times)

    def test_experiment_simulate_threads_mega_batch(self, race_network, race_condition):
        experiment = Experiment.from_network(race_network, stopping=race_condition)
        one = experiment.simulate(
            trials=1500, engine="batch-direct", seed=21, workers=1, mega_batch=400
        )
        two = experiment.simulate(
            trials=1500, engine="batch-direct", seed=21, workers=2, mega_batch=400
        )
        assert one.ensemble.outcome_counts == two.ensemble.outcome_counts
        np.testing.assert_array_equal(
            one.ensemble.final_counts, two.ensemble.final_counts
        )

    def test_adaptive_chunk_counts_worker_invariant(self, race_network, race_condition):
        from repro.adaptive import CiHalfWidthTarget
        from repro.adaptive.controller import AdaptiveController

        def run(workers):
            runner = ParallelEnsembleRunner(
                race_network,
                engine="batch-direct",
                stopping=race_condition,
                options=SimulationOptions(record_firings=False, mega_batch=256),
                workers=workers,
            )
            target = CiHalfWidthTarget(outcome="A", half_width=0.04, max_trials=8192)
            return AdaptiveController(runner, target).run(23)

        (merged_one, info_one), (merged_two, info_two) = run(1), run(2)
        assert info_one.chunks == info_two.chunks
        assert info_one.rounds == info_two.rounds
        assert merged_one.n_trials == merged_two.n_trials
        assert merged_one.outcome_counts == merged_two.outcome_counts
        np.testing.assert_array_equal(merged_one.final_counts, merged_two.final_counts)

    def test_adaptive_mega_batch_prefix_of_fixed_run(self, race_network, race_condition):
        from repro.adaptive import CiHalfWidthTarget
        from repro.adaptive.controller import AdaptiveController

        runner = ParallelEnsembleRunner(
            race_network,
            engine="batch-direct",
            stopping=race_condition,
            options=SimulationOptions(record_firings=False, mega_batch=256),
            workers=1,
        )
        target = CiHalfWidthTarget(outcome="A", half_width=0.05, max_trials=8192)
        merged, _info = AdaptiveController(runner, target).run(29)
        fixed = runner.run(n_trials=merged.n_trials, seed=29)
        assert merged.outcome_counts == fixed.outcome_counts
        np.testing.assert_array_equal(merged.final_counts, fixed.final_counts)

    def test_serialization_emits_key_only_when_set(self):
        from repro.store.serialize import _options_from_payload, _options_payload

        default = _options_payload(SimulationOptions(record_firings=False))
        assert "mega_batch" not in default  # fingerprints of old entries stable
        widened = _options_payload(
            SimulationOptions(record_firings=False, mega_batch=100_000)
        )
        assert widened["mega_batch"] == 100_000
        round_tripped = _options_from_payload(widened)
        assert round_tripped.mega_batch == 100_000
        assert _options_from_payload(default).mega_batch is None


# ---------------------------------------------------------------------------
# scale regressions
# ---------------------------------------------------------------------------


class TestScaleRegressions:
    def test_batch_wider_than_random_block_cap(self):
        """One sweep step needs n_active draws: 20k trials > MAX_BLOCK (16384)."""
        network = parse_network("x ->{1} 0\ninit: x = 3")
        engine = BatchDirectEngine(network, seed=1)
        batch = engine.run_batch(20_000)
        assert batch.n_trials == 20_000
        assert all(reason == StopReason.EXHAUSTED for reason in batch.stop_reasons)
        np.testing.assert_array_equal(
            batch.firing_counts.sum(axis=1), np.full(20_000, 3)
        )

    def test_batch_blocks_scale_with_trial_count(self):
        blocks = batch_random_blocks(np.random.default_rng(0), 500_000)
        exp = blocks.refill_exponential(0, need=500_000)
        assert len(exp) >= 500_000
        uni = blocks.refill_uniform(0, need=500_000)
        assert len(uni) >= 500_000

    def test_network_wider_than_block_cap(self):
        """Extends the PR-4 9000-reaction refill regression to the batch sweep."""
        n = 9000
        network = ReactionNetwork(
            reactions=[Reaction({f"a{i}": 1}, {}, rate=1.0) for i in range(n)],
            initial_state={f"a{i}": 1 for i in range(n)},
        )
        engine = BatchDirectEngine(network, seed=1)
        batch = engine.run_batch(4, max_steps=3)
        np.testing.assert_array_equal(batch.firing_counts.sum(axis=1), np.full(4, 3))
        assert all(reason == StopReason.MAX_STEPS for reason in batch.stop_reasons)


# ---------------------------------------------------------------------------
# numpy <-> numba bit-identity
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
class TestBatchBitIdentity:
    def _run(self, network, condition, backend, n_trials=500):
        engine = BatchDirectEngine(network, seed=123)
        return engine.run_batch(n_trials, stopping=condition, backend=backend)

    def test_sweep_bit_identical_across_backends(self, race_network, race_condition):
        numpy_batch = self._run(race_network, race_condition, "numpy")
        numba_batch = self._run(race_network, race_condition, "numba")
        np.testing.assert_array_equal(
            numpy_batch.final_counts, numba_batch.final_counts
        )
        np.testing.assert_array_equal(numpy_batch.final_times, numba_batch.final_times)
        np.testing.assert_array_equal(
            numpy_batch.firing_counts, numba_batch.firing_counts
        )
        assert list(numpy_batch.stop_details) == list(numba_batch.stop_details)
        assert [str(r) for r in numpy_batch.stop_reasons] == [
            str(r) for r in numba_batch.stop_reasons
        ]

    def test_mixed_stops_bit_identical(self, race_network):
        # No condition: every trial runs to exhaustion or the caps, exercising
        # the compaction paths on both backends.
        one = BatchDirectEngine(race_network, seed=9).run_batch(
            300, max_time=2.0, max_steps=80
        )
        two_engine = BatchDirectEngine(race_network, seed=9)
        two = two_engine.run_batch(300, max_time=2.0, max_steps=80, backend="numba")
        np.testing.assert_array_equal(one.final_counts, two.final_counts)
        np.testing.assert_array_equal(one.final_times, two.final_times)

    def test_mega_batch_bit_identical(self, race_network, race_condition):
        numpy_batch = self._run(race_network, race_condition, "numpy", n_trials=100_000)
        numba_batch = self._run(race_network, race_condition, "numba", n_trials=100_000)
        np.testing.assert_array_equal(
            numpy_batch.final_counts, numba_batch.final_counts
        )
        np.testing.assert_array_equal(numpy_batch.final_times, numba_batch.final_times)
