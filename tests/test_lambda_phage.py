"""Tests for the lambda bacteriophage application (Section 3)."""

from __future__ import annotations

import pytest

from repro.errors import SynthesisError
from repro.lambda_phage import (
    CI2_THRESHOLD,
    CRO2_THRESHOLD,
    LYSIS,
    LYSOGENY,
    NaturalLambdaSurrogate,
    PAPER_MOI_VALUES,
    SyntheticLambdaModel,
    build_synthetic_model,
    figure4_network,
    fit_response_data,
    paper_equation_14,
    target_response_curve,
)
from repro.lambda_phage.experiment import run_figure5_experiment, simulate_synthetic_moi


class TestFitModule:
    def test_paper_moi_grid(self):
        assert PAPER_MOI_VALUES == tuple(range(1, 11))

    def test_target_curve_values(self):
        curve = target_response_curve([1, 2, 4, 8])
        assert curve[1.0] == pytest.approx(15 + 1 / 6)
        assert curve[8.0] == pytest.approx(15 + 18 + 8 / 6)

    def test_fit_recovers_eq14_from_its_own_curve(self):
        fit = fit_response_data(target_response_curve())
        assert fit.intercept == pytest.approx(15.0, abs=1e-6)
        assert fit.log_coefficient == pytest.approx(6.0, abs=1e-6)
        assert fit.linear_coefficient == pytest.approx(1 / 6, abs=1e-6)


class TestFigure4Literal:
    def test_census_matches_paper(self):
        """Section 3.2: 'a model with 19 reactions in 17 types'."""
        network = figure4_network(moi=1)
        assert network.size == 19
        assert len(network.species) == 17

    def test_initial_quantities(self):
        network = figure4_network(moi=3)
        assert network.initial_count("e1") == 15
        assert network.initial_count("e2") == 85
        assert network.initial_count("b") == 1
        assert network.initial_count("moi") == 3
        assert network.initial_count("f1") >= CRO2_THRESHOLD
        assert network.initial_count("f2") >= CI2_THRESHOLD

    def test_rate_extremes(self):
        network = figure4_network()
        rates = [r.rate for r in network.reactions]
        assert min(rates) == pytest.approx(1e-9)
        assert max(rates) == pytest.approx(1e9)

    def test_moi_validation(self):
        with pytest.raises(SynthesisError):
            figure4_network(moi=0)


class TestNaturalSurrogate:
    def test_probability_follows_eq14(self):
        surrogate = NaturalLambdaSurrogate()
        assert surrogate.lysogeny_probability(4) == pytest.approx(
            paper_equation_14(4) / 100.0
        )

    def test_network_structure(self):
        surrogate = NaturalLambdaSurrogate(scale=100)
        network = surrogate.network_for_moi(5)
        assert network.metadata["moi"] == 5.0
        # Two-outcome stochastic module: 9 reactions.
        assert network.size == 9
        total_inputs = network.initial_count(f"e_{LYSOGENY}") + network.initial_count(
            f"e_{LYSIS}"
        )
        assert total_inputs == 100

    def test_simulated_point_matches_target(self):
        surrogate = NaturalLambdaSurrogate()
        estimate = surrogate.simulate_moi(4, n_trials=150, seed=11)
        assert estimate.percent == pytest.approx(paper_equation_14(4), abs=9.0)

    def test_response_curve_keys(self):
        surrogate = NaturalLambdaSurrogate()
        curve = surrogate.response_curve([1, 2], n_trials=40, seed=3)
        assert set(curve) == {1.0, 2.0}


class TestSyntheticModel:
    def test_structure_mirrors_paper_decomposition(self):
        network = build_synthetic_model(moi=2)
        categories = network.categories()
        for expected in ("fanout", "logarithm", "linear", "assimilation",
                         "initializing", "reinforcing", "stabilizing", "purifying", "working"):
            assert expected in categories, expected
        assert network.initial_count("moi") == 2
        # Base quantities 15 / 85 programmed into the stochastic module inputs.
        assert network.initial_count(f"e_{LYSOGENY}") == 15
        assert network.initial_count(f"e_{LYSIS}") == 85

    def test_outputs_and_thresholds(self):
        model = SyntheticLambdaModel()
        network = model.build(1)
        assert network.has_species("cro2") and network.has_species("ci2")
        assert model.expected_lysogeny_percent(8) == pytest.approx(34.333, abs=1e-3)

    def test_moi_validation(self):
        with pytest.raises(SynthesisError):
            SyntheticLambdaModel().build(0)

    def test_response_tracks_equation14_at_low_and_high_moi(self):
        """The synthesized chemistry must reproduce the MOI dependence (Figure 5)."""
        model = SyntheticLambdaModel()
        low = simulate_synthetic_moi(model, 1, n_trials=150, seed=21)
        high = simulate_synthetic_moi(model, 8, n_trials=150, seed=22)
        assert low.percent == pytest.approx(paper_equation_14(1), abs=9.0)
        assert high.percent == pytest.approx(paper_equation_14(8), abs=10.0)
        assert high.percent > low.percent


class TestFigure5Experiment:
    def test_small_sweep_report(self):
        result = run_figure5_experiment(
            moi_values=[1, 4, 8], n_trials=60, seed=5
        )
        assert len(result.points) == 3
        assert result.natural_fit is not None and result.synthetic_fit is not None
        # The fitted curves should rise with MOI like Eq. 14 does.
        assert result.synthetic_fit.predict(8.0)[0] > result.synthetic_fit.predict(1.0)[0]
        text = result.summary()
        assert "Figure 5" in text
        assert "natural fit" in text and "synthetic fit" in text

    def test_natural_only_sweep(self):
        result = run_figure5_experiment(
            moi_values=[2, 6], n_trials=40, seed=6, include_synthetic=False
        )
        assert result.synthetic_fit is None
        assert all(p.synthetic is None for p in result.points)
        assert "natural" in result.table()
