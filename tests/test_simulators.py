"""Tests for the exact SSA engines (direct, first-reaction, next-reaction).

Correctness checks use small systems with known analytic answers:

* a pure-death process (every molecule decays) must always exhaust;
* the mean of a birth–death process at stationarity is rate_in / rate_out;
* a k-way race decided by the first firing must reproduce the propensity
  ratios (this is the core mechanism the paper's stochastic module relies on);
* all engines must agree with each other within Monte-Carlo error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crn import parse_network
from repro.errors import SimulationError
from repro.sim import (
    ENGINES,
    DirectMethodSimulator,
    FiringCountCondition,
    NextReactionSimulator,
    SimulationOptions,
    SpeciesThreshold,
    StopReason,
    make_simulator,
)

EXACT_ENGINES = ["direct", "first-reaction", "next-reaction"]


class TestRunMechanics:
    def test_pure_death_exhausts(self):
        net = parse_network("x ->{1} 0\ninit: x = 20")
        trajectory = DirectMethodSimulator(net, seed=1).run()
        assert trajectory.stop_reason == StopReason.EXHAUSTED
        assert trajectory.final_count("x") == 0
        assert trajectory.n_firings == 20

    def test_times_are_increasing(self):
        net = parse_network("x ->{1} 0\ninit: x = 30")
        trajectory = DirectMethodSimulator(net, seed=2).run()
        assert np.all(np.diff(trajectory.times) >= 0)
        assert trajectory.final_time == pytest.approx(trajectory.times[-1])

    def test_max_steps_stop(self):
        net = parse_network("src ->{1} src + x\ninit: src = 1")
        trajectory = DirectMethodSimulator(net, seed=3).run(max_steps=50)
        assert trajectory.stop_reason == StopReason.MAX_STEPS
        assert trajectory.n_firings == 50

    def test_max_time_stop(self):
        net = parse_network("src ->{1} src + x\ninit: src = 1")
        trajectory = DirectMethodSimulator(net, seed=4).run(max_time=5.0)
        assert trajectory.stop_reason == StopReason.MAX_TIME
        assert trajectory.final_time == pytest.approx(5.0)

    def test_condition_stop(self):
        net = parse_network("src ->{1} src + x\ninit: src = 1")
        trajectory = DirectMethodSimulator(net, seed=5).run(
            stopping=SpeciesThreshold("x", 7)
        )
        assert trajectory.stop_reason == StopReason.CONDITION
        assert trajectory.final_count("x") == 7

    def test_condition_already_true_at_start(self):
        net = parse_network("x ->{1} 0\ninit: x = 5")
        trajectory = DirectMethodSimulator(net, seed=6).run(
            stopping=SpeciesThreshold("x", 5)
        )
        assert trajectory.stop_reason == StopReason.CONDITION
        assert trajectory.n_firings == 0

    def test_initial_state_override(self):
        net = parse_network("x ->{1} 0\ninit: x = 5")
        trajectory = DirectMethodSimulator(net, seed=7).run(initial_state={"x": 2})
        assert trajectory.n_firings == 2

    def test_initial_state_unknown_species_rejected(self):
        net = parse_network("x ->{1} 0\ninit: x = 5")
        with pytest.raises(SimulationError):
            DirectMethodSimulator(net, seed=8).run(initial_state={"zzz": 1})

    def test_record_states_snapshots(self):
        net = parse_network("x ->{1} 0\ninit: x = 10")
        trajectory = DirectMethodSimulator(net, seed=9).run(record_states=True)
        series = trajectory.species_series("x")
        assert len(series) == trajectory.n_firings
        assert series[0] == 9 and series[-1] == 0

    def test_record_firings_off(self):
        net = parse_network("x ->{1} 0\ninit: x = 10")
        trajectory = DirectMethodSimulator(net, seed=10).run(record_firings=False)
        assert trajectory.n_firings == 0            # log disabled...
        assert trajectory.firing_counts.sum() == 10  # ...but totals still tracked

    def test_reproducible_with_same_seed(self):
        net = parse_network("x ->{1} 0\ninit: x = 15")
        t1 = DirectMethodSimulator(net, seed=42).run()
        t2 = DirectMethodSimulator(net, seed=42).run()
        np.testing.assert_allclose(t1.times, t2.times)
        np.testing.assert_array_equal(t1.reaction_indices, t2.reaction_indices)

    def test_invalid_options_rejected(self):
        with pytest.raises(SimulationError):
            SimulationOptions(max_steps=0)
        with pytest.raises(SimulationError):
            SimulationOptions(max_time=-1.0)

    def test_engine_registry(self):
        assert set(EXACT_ENGINES) <= set(ENGINES)
        with pytest.raises(Exception):
            make_simulator(parse_network("x ->{1} 0"), engine="bogus")


@pytest.mark.parametrize("engine", EXACT_ENGINES)
class TestStatisticalCorrectness:
    def test_race_probabilities_follow_propensities(self, engine, race_network):
        # First firing among e1/e2/e3 conversions at equal rates and quantities
        # 30/40/30 must occur with probabilities 0.3/0.4/0.3 (Section 2.1.2).
        simulator = make_simulator(race_network, engine=engine, seed=123)
        condition = FiringCountCondition([0, 1, 2], 1)
        wins = {"d1": 0, "d2": 0, "d3": 0}
        n = 1500
        for _ in range(n):
            trajectory = simulator.run(stopping=condition, record_firings=False)
            for name in wins:
                if trajectory.final_count(name) == 1:
                    wins[name] += 1
        assert wins["d1"] / n == pytest.approx(0.3, abs=0.05)
        assert wins["d2"] / n == pytest.approx(0.4, abs=0.05)
        assert wins["d3"] / n == pytest.approx(0.3, abs=0.05)

    def test_exhaustion_time_mean(self, engine):
        # Single molecule decaying at rate 2: mean lifetime 0.5.
        net = parse_network("x ->{2} 0\ninit: x = 1")
        simulator = make_simulator(net, engine=engine, seed=7)
        lifetimes = [simulator.run().final_time for _ in range(2000)]
        assert np.mean(lifetimes) == pytest.approx(0.5, rel=0.1)

    def test_birth_death_stationary_mean(self, engine, birth_death_network):
        # Birth rate 5, death rate 0.5 per molecule: stationary mean = 10.
        simulator = make_simulator(birth_death_network, engine=engine, seed=11)
        finals = [
            simulator.run(max_time=30.0, record_firings=False).final_count("x")
            for _ in range(60)
        ]
        assert np.mean(finals) == pytest.approx(10.0, rel=0.2)


class TestEngineAgreement:
    def test_final_distribution_agreement(self, example1_network):
        """All exact engines must give the same outcome statistics."""
        from repro.sim import CategoryFiringCondition

        distributions = {}
        for engine in EXACT_ENGINES:
            simulator = make_simulator(example1_network, engine=engine, seed=99)
            condition = CategoryFiringCondition("working", 5)
            outcomes = {"working[1]": 0, "working[2]": 0, "working[3]": 0}
            n = 300
            for _ in range(n):
                trajectory = simulator.run(stopping=condition, record_firings=False)
                outcomes[trajectory.stop_detail] += 1
            distributions[engine] = {k: v / n for k, v in outcomes.items()}
        for engine in EXACT_ENGINES[1:]:
            for key in distributions["direct"]:
                assert distributions[engine][key] == pytest.approx(
                    distributions["direct"][key], abs=0.09
                )

    def test_next_reaction_trajectory_statistics(self):
        """Next-reaction must reproduce the decay-chain completion time."""
        net = parse_network("a ->{1} b\nb ->{1} c\ninit: a = 1")
        direct = DirectMethodSimulator(net, seed=5)
        nrm = NextReactionSimulator(net, seed=5)
        mean_direct = np.mean([direct.run().final_time for _ in range(1500)])
        mean_nrm = np.mean([nrm.run().final_time for _ in range(1500)])
        # Both estimate E[T] = 1 + 1 = 2.
        assert mean_direct == pytest.approx(2.0, rel=0.1)
        assert mean_nrm == pytest.approx(2.0, rel=0.1)
