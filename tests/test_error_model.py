"""Tests for the Figure-3 error model (repro.core.error_model)."""

from __future__ import annotations

import pytest

from repro.core import (
    PAPER_GAMMA_VALUES,
    build_error_experiment_network,
    classify_trial,
    estimate_error_rate,
    gamma_sweep,
)
from repro.core.error_model import ErrorEstimate
from repro.errors import SynthesisError
from repro.sim import CategoryFiringCondition, SimulationOptions, make_simulator


class TestExperimentNetwork:
    def test_paper_configuration(self):
        """Three outcomes, each input type at 100 molecules, unit initializing rate."""
        network = build_error_experiment_network(gamma=100.0)
        for label in ("1", "2", "3"):
            assert network.initial_count(f"e_{label}") == 100
        for _, reaction in network.reactions_in_category("initializing"):
            assert reaction.rate == pytest.approx(1.0)
        for _, reaction in network.reactions_in_category("purifying"):
            assert reaction.rate == pytest.approx(100.0**2)

    def test_custom_outcome_count(self):
        network = build_error_experiment_network(gamma=10.0, n_outcomes=4)
        assert len(network.reactions_in_category("initializing")) == 4
        assert len(network.reactions_in_category("purifying")) == 6

    def test_validation(self):
        with pytest.raises(SynthesisError):
            build_error_experiment_network(gamma=10.0, n_outcomes=1)


class TestClassification:
    def test_intended_and_actual_labels(self):
        network = build_error_experiment_network(gamma=1000.0)
        simulator = make_simulator(network, seed=5)
        trajectory = simulator.run(
            stopping=CategoryFiringCondition("working", 10),
            options=SimulationOptions(record_firings=True),
        )
        classified = classify_trial(trajectory, network)
        assert classified is not None
        intended, actual = classified
        assert intended in {"1", "2", "3"}
        assert actual in {"1", "2", "3"}

    def test_undecided_when_nothing_fired(self):
        network = build_error_experiment_network(gamma=10.0)
        simulator = make_simulator(network, seed=6)
        trajectory = simulator.run(options=SimulationOptions(max_steps=1, record_firings=True))
        # One firing cannot both initialize and reach 10 working firings.
        assert classify_trial(trajectory, network) is None


class TestErrorEstimates:
    def test_error_estimate_properties(self):
        estimate = ErrorEstimate(gamma=10.0, n_trials=100, n_errors=5, n_undecided=20)
        assert estimate.error_rate == pytest.approx(5 / 80)
        assert estimate.error_percent == pytest.approx(100 * 5 / 80)

    def test_error_rate_zero_when_all_undecided(self):
        estimate = ErrorEstimate(gamma=10.0, n_trials=10, n_errors=0, n_undecided=10)
        assert estimate.error_rate == 0.0

    def test_error_decreases_with_gamma(self):
        """The headline claim of Figure 3: larger γ → smaller error."""
        low = estimate_error_rate(1.0, n_trials=250, seed=1)
        high = estimate_error_rate(100.0, n_trials=250, seed=2)
        assert low.error_rate > high.error_rate
        assert low.error_rate > 0.1          # γ=1: tens of percent
        assert high.error_rate < 0.1         # γ=100: around a percent

    def test_validation(self):
        with pytest.raises(SynthesisError):
            estimate_error_rate(10.0, n_trials=0)

    def test_gamma_sweep_structure(self):
        points = gamma_sweep([1.0, 10.0], n_trials=60, seed=3)
        assert [p.gamma for p in points] == [1.0, 10.0]
        assert all(0.0 <= p.estimate.error_rate <= 1.0 for p in points)

    def test_paper_gamma_grid(self):
        assert PAPER_GAMMA_VALUES == (1.0, 10.0, 100.0, 1e3, 1e4, 1e5)
