"""Adaptive-precision ensembles: targets, controller, facade and plumbing.

The adaptive layer's contract has three load-bearing pieces, each pinned
here:

* **stopping rules** (:mod:`repro.adaptive.targets`) are pure functions of
  merged ensemble statistics with exact descriptor round trips;
* the **sequential controller** only ever extends the ensemble layer's
  worker-invariant chunk schedule, so an adaptive run is bit-identical to
  the prefix of a fixed-budget run — and bit-identical across worker
  counts, *including the number of chunks it decides to consume*;
* everything downstream (store fingerprints, campaign cells, the HTTP
  service, the CLI) treats the declared target — never the realized trial
  count — as the run's identity.
"""

from __future__ import annotations

import argparse
import math
from statistics import NormalDist

import numpy as np
import pytest

from repro.adaptive import (
    DEFAULT_MAX_TRIALS,
    AdaptiveResult,
    CiHalfWidthTarget,
    RelativeSETarget,
    SplittingConfig,
    SprtTarget,
    target_from_descriptor,
)
from repro.adaptive.controller import AdaptiveController
from repro.adaptive.result import AdaptiveInfo
from repro.api import Experiment
from repro.crn import Species, parse_network
from repro.errors import AdaptiveError, ExperimentError
from repro.sim import OutcomeThresholds
from repro.sim.events import CategoryFiringCondition
from repro.sim.ensemble import EnsembleResult, ParallelEnsembleRunner
from repro.store import ResultStore, experiment_to_payload, fingerprint_payload
from repro.store.fingerprint import canonical_json


# -- workloads --------------------------------------------------------------------


def race_experiment() -> Experiment:
    """A cheap three-way race (the determinism suite's workload)."""
    network = parse_network(
        """
        init: e1 = 30
        init: e2 = 40
        init: e3 = 30
        e1 ->{1} d1
        e2 ->{1} d2
        e3 ->{1} d3
        """,
        name="race-to-3",
    )
    stopping = OutcomeThresholds({"1": ("d1", 3), "2": ("d2", 3), "3": ("d3", 3)})
    return Experiment.from_network(network, stopping=stopping)


@pytest.fixture(scope="module")
def experiment() -> Experiment:
    return race_experiment()


def make_binomial_ensemble(n: int, successes: int, outcome: str = "hit") -> EnsembleResult:
    """A synthetic merged ensemble with a known success count."""
    counts = {outcome: successes}
    if n - successes:
        counts[EnsembleResult.UNDECIDED] = n - successes
    return EnsembleResult(
        n_trials=n,
        outcome_counts=counts,
        final_counts=np.zeros((n, 1), dtype=np.int64),
        species=(Species("x"),),
        final_times=np.zeros(n),
        n_firings=np.zeros(n, dtype=np.int64),
    )


def make_value_ensemble(values) -> EnsembleResult:
    """A synthetic ensemble whose species ``x`` has the given final counts."""
    values = np.asarray(values, dtype=np.int64)
    return EnsembleResult(
        n_trials=len(values),
        outcome_counts={EnsembleResult.UNDECIDED: len(values)},
        final_counts=values.reshape(-1, 1),
        species=(Species("x"),),
        final_times=np.zeros(len(values)),
        n_firings=np.zeros(len(values), dtype=np.int64),
    )


# -- stopping rules ---------------------------------------------------------------


class TestCiHalfWidthTarget:
    def test_wilson_interval_matches_reference(self):
        # Wilson score interval for 30/100 at 95%: the published closed form.
        target = CiHalfWidthTarget(outcome="hit", half_width=0.5)
        low, high = target.interval(30, 100)
        z = NormalDist().inv_cdf(0.975)
        denominator = 1 + z * z / 100
        center = (0.3 + z * z / 200) / denominator
        spread = z * math.sqrt(0.3 * 0.7 / 100 + z * z / 40_000) / denominator
        assert low == pytest.approx(center - spread)
        assert high == pytest.approx(center + spread)
        assert low == pytest.approx(0.2189, abs=2e-4)
        assert high == pytest.approx(0.3958, abs=2e-4)

    def test_wilson_handles_zero_counts(self):
        target = CiHalfWidthTarget(outcome="hit", half_width=0.1)
        low, high = target.interval(0, 50)
        assert low == 0.0
        assert 0.0 < high < 0.15

    def test_clopper_pearson_is_conservative(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        exact = CiHalfWidthTarget(outcome="hit", half_width=0.5, method="clopper-pearson")
        wilson = CiHalfWidthTarget(outcome="hit", half_width=0.5, method="wilson")
        low, high = exact.interval(30, 100)
        assert low == pytest.approx(float(scipy_stats.beta.ppf(0.025, 30, 71)))
        assert high == pytest.approx(float(scipy_stats.beta.ppf(0.975, 31, 70)))
        w_low, w_high = wilson.interval(30, 100)
        assert high - low >= w_high - w_low  # exact interval is never narrower
        assert exact.interval(0, 40)[0] == 0.0
        assert exact.interval(40, 40)[1] == 1.0

    def test_evaluate_counts_undecided_as_failures(self):
        target = CiHalfWidthTarget(outcome="hit", half_width=0.5)
        status = target.evaluate(make_binomial_ensemble(200, 60))
        assert status.achieved["p_hat"] == pytest.approx(0.3)
        assert status.achieved["n"] == 200.0
        assert status.achieved["successes"] == 60.0

    def test_met_iff_half_width_small_enough(self):
        wide = CiHalfWidthTarget(outcome="hit", half_width=0.2)
        narrow = CiHalfWidthTarget(outcome="hit", half_width=0.01)
        ensemble = make_binomial_ensemble(400, 100)
        assert wide.evaluate(ensemble).met
        assert wide.evaluate(ensemble).detail == "met"
        assert not narrow.evaluate(ensemble).met
        assert narrow.evaluate(ensemble).detail == "unmet"

    def test_empty_ensemble_is_unmet(self):
        target = CiHalfWidthTarget(outcome="hit", half_width=0.9)
        assert target.interval(0, 0) == (0.0, 1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(half_width=0.0),
            dict(half_width=1.0),
            dict(half_width=0.1, confidence=1.0),
            dict(half_width=0.1, method="bogus"),
            dict(half_width=0.1, max_trials=0),
            dict(half_width=0.1, min_trials=-1),
            dict(half_width=0.1, max_trials=10, min_trials=11),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(AdaptiveError):
            CiHalfWidthTarget(outcome="hit", **kwargs)


class TestRelativeSETarget:
    def test_rel_se_matches_sample_statistics(self):
        values = [4, 6, 5, 7, 3, 5, 6, 4]
        target = RelativeSETarget(species="x", rel_se=0.5)
        status = target.evaluate(make_value_ensemble(values))
        mean = float(np.mean(values))
        se = float(np.std(values, ddof=1)) / math.sqrt(len(values))
        assert status.achieved["mean"] == pytest.approx(mean)
        assert status.achieved["se"] == pytest.approx(se)
        assert status.achieved["rel_se"] == pytest.approx(se / mean)
        assert status.met

    def test_mean_zero_keeps_sampling(self):
        target = RelativeSETarget(species="x", rel_se=0.01)
        status = target.evaluate(make_value_ensemble([0, 0, 0, 0]))
        assert not status.met
        assert status.detail == "mean-zero"

    def test_validation(self):
        with pytest.raises(AdaptiveError):
            RelativeSETarget(species="x", rel_se=0.0)
        with pytest.raises(AdaptiveError):
            RelativeSETarget(species="x", rel_se=0.1, max_trials=-5)


class TestSprtTarget:
    def test_boundaries_are_walds(self):
        target = SprtTarget(outcome="hit", p0=0.1, p1=0.2, alpha=0.05, beta=0.1)
        assert target.upper_boundary == pytest.approx(math.log(0.9 / 0.05))
        assert target.lower_boundary == pytest.approx(math.log(0.1 / 0.95))

    def test_clear_evidence_decides(self):
        target = SprtTarget(outcome="hit", p0=0.1, p1=0.3)
        high = target.evaluate(make_binomial_ensemble(200, 80))  # p_hat 0.4 >> p1
        assert high.met and high.detail == "accept-h1"
        low = target.evaluate(make_binomial_ensemble(200, 4))  # p_hat 0.02 << p0
        assert low.met and low.detail == "accept-h0"
        few = target.evaluate(make_binomial_ensemble(3, 1))
        assert not few.met and few.detail == "undecided"

    def test_llr_value(self):
        target = SprtTarget(outcome="hit", p0=0.2, p1=0.4)
        status = target.evaluate(make_binomial_ensemble(50, 15))
        expected = 15 * math.log(2.0) + 35 * math.log(0.6 / 0.8)
        assert status.achieved["llr"] == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(AdaptiveError, match="p0 < p1"):
            SprtTarget(outcome="hit", p0=0.3, p1=0.2)
        with pytest.raises(AdaptiveError):
            SprtTarget(outcome="hit", p0=0.0, p1=0.2)
        with pytest.raises(AdaptiveError):
            SprtTarget(outcome="hit", p0=0.1, p1=0.2, alpha=1.5)


# -- descriptor round trips -------------------------------------------------------


ROUND_TRIP_TARGETS = [
    CiHalfWidthTarget(outcome="1", half_width=0.02, confidence=0.9,
                      method="clopper-pearson", max_trials=5000, min_trials=100),
    CiHalfWidthTarget(outcome="rare", half_width=0.005),
    RelativeSETarget(species="d1", rel_se=0.05, max_trials=20_000),
    SprtTarget(outcome="2", p0=0.25, p1=0.35, alpha=0.01, beta=0.02),
    SplittingConfig(outcome="rare", trials_per_level=128),
    SplittingConfig(outcome="rare", trials_per_level=64, levels=(2, 4, 8)),
    SplittingConfig(outcome="rare", trials_per_level=64, n_levels=3, confidence=0.99),
]


class TestDescriptors:
    @pytest.mark.parametrize("target", ROUND_TRIP_TARGETS, ids=lambda t: t.rule)
    def test_round_trip_is_exact(self, target):
        descriptor = target.to_descriptor()
        assert target_from_descriptor(descriptor) == target
        # Descriptors are canonical-JSON clean (finite floats, sorted-safe).
        assert canonical_json(descriptor)

    def test_unknown_type_rejected(self):
        with pytest.raises(AdaptiveError, match="unknown adaptive target"):
            target_from_descriptor({"type": "psychic"})

    def test_round_trip_property(self):
        pytest.importorskip("hypothesis")
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=50, deadline=None)
        @given(
            half_width=st.floats(min_value=1e-6, max_value=0.999,
                                 allow_nan=False, allow_infinity=False),
            confidence=st.floats(min_value=0.5, max_value=0.999,
                                 allow_nan=False, allow_infinity=False),
            max_trials=st.integers(min_value=1, max_value=10**6),
            method=st.sampled_from(["wilson", "clopper-pearson"]),
        )
        def round_trips(half_width, confidence, max_trials, method):
            target = CiHalfWidthTarget(
                outcome="hit", half_width=half_width, confidence=confidence,
                max_trials=max_trials, method=method,
            )
            assert target_from_descriptor(target.to_descriptor()) == target

        round_trips()


# -- the sequential controller ----------------------------------------------------


class TestController:
    def runner(self, experiment, workers=1, chunk_size=64, backend=None):
        network, stopping, classifier = experiment._resolved()
        options = experiment.options or experiment._default_options()
        return ParallelEnsembleRunner(
            network,
            engine="direct",
            stopping=stopping,
            outcome_classifier=classifier,
            options=options,
            workers=workers,
            chunk_size=chunk_size,
        )

    def test_requires_seed(self, experiment):
        target = CiHalfWidthTarget(outcome="1", half_width=0.1)
        controller = AdaptiveController(self.runner(experiment), target)
        with pytest.raises(AdaptiveError, match="must be seeded"):
            controller.run(None)

    def test_requires_precision_target(self, experiment):
        with pytest.raises(AdaptiveError, match="PrecisionTarget"):
            AdaptiveController(self.runner(experiment), target="not-a-target")

    def test_geometric_rounds_consume_power_of_two_chunks(self, experiment):
        target = CiHalfWidthTarget(outcome="1", half_width=0.04, max_trials=8192)
        merged, info = AdaptiveController(self.runner(experiment), target).run(5)
        assert info.met
        assert merged.n_trials == info.chunks * 64
        # min_trials=0 → rounds reveal 1, 2, 4, ... chunks.
        assert info.chunks & (info.chunks - 1) == 0
        assert info.rounds == int(math.log2(info.chunks)) + 1

    def test_adaptive_run_is_prefix_of_fixed_run(self, experiment):
        target = CiHalfWidthTarget(outcome="1", half_width=0.05, max_trials=8192)
        runner = self.runner(experiment)
        merged, info = AdaptiveController(runner, target).run(11)
        fixed = runner.run(n_trials=merged.n_trials, seed=11)
        assert merged.outcome_counts == fixed.outcome_counts
        assert np.array_equal(merged.final_counts, fixed.final_counts)
        assert np.array_equal(merged.final_times, fixed.final_times)
        assert np.array_equal(merged.n_firings, fixed.n_firings)

    def test_budget_exhaustion_clips_to_max_trials(self, experiment):
        # half_width 0.001 needs ~1e6 trials; the ceiling (not a chunk
        # multiple, deliberately) must clip the final chunk.
        target = CiHalfWidthTarget(outcome="1", half_width=0.001, max_trials=100)
        merged, info = AdaptiveController(self.runner(experiment), target).run(3)
        assert not info.met
        assert info.detail == "unmet"
        assert merged.n_trials == 100

    def test_min_trials_floor_is_respected(self, experiment):
        target = CiHalfWidthTarget(
            outcome="1", half_width=0.2, max_trials=4096, min_trials=200
        )
        merged, info = AdaptiveController(self.runner(experiment), target).run(5)
        assert merged.n_trials >= 200
        # The floor is revealed in one first round: ceil(200/64) = 4 chunks.
        assert info.chunks >= 4


# -- the facade: simulate(until=...) ----------------------------------------------


class TestSimulateUntil:
    def test_returns_adaptive_result(self, experiment):
        target = CiHalfWidthTarget(outcome="1", half_width=0.05, max_trials=4096)
        result = experiment.simulate(until=target, seed=7, chunk_size=256)
        assert isinstance(result, AdaptiveResult)
        assert result.stopping_rule == "ci-half-width"
        assert result.met
        assert result.trials == result.chunks_consumed * 256
        assert result.achieved["ci_half_width"] <= 0.05
        assert result.adaptive.until == target.to_descriptor()
        assert "adaptive [ci-half-width]" in result.summary()

    def test_trials_argument_is_ignored(self, experiment):
        target = CiHalfWidthTarget(outcome="1", half_width=0.05, max_trials=4096)
        first = experiment.simulate(until=target, seed=7, chunk_size=256, trials=10)
        second = experiment.simulate(until=target, seed=7, chunk_size=256, trials=9999)
        assert first.to_json() == second.to_json()

    def test_sprt_decides(self, experiment):
        # Outcome "2" has the largest propensity share; is P("2") >= 0.25?
        target = SprtTarget(outcome="2", p0=0.15, p1=0.25, max_trials=8192)
        result = experiment.simulate(until=target, seed=13, chunk_size=256)
        assert result.met
        assert result.adaptive.detail == "accept-h1"

    def test_rel_se_on_species_mean(self, experiment):
        target = RelativeSETarget(species="d1", rel_se=0.05, max_trials=8192)
        result = experiment.simulate(until=target, seed=17, chunk_size=256)
        assert result.met
        assert result.achieved["rel_se"] <= 0.05
        assert result.achieved["mean"] > 0.0


class TestSynthesizedOutcomeAlias:
    """Synthesized designs run without a classifier label outcomes ``working[<label>]``.

    The CLI path (``repro simulate design.json --until-...``) loads a raw
    network, so the ensemble's outcome keys are the stop details
    ``working[a]`` — a bare ``outcome="a"`` must count those trials instead
    of silently estimating p=0 for a key that never occurs.
    """

    def test_bare_label_falls_back_to_working_alias(self):
        ensemble = make_binomial_ensemble(100, 30, outcome="working[a]")
        status = CiHalfWidthTarget(outcome="a", half_width=0.5).evaluate(ensemble)
        assert status.achieved["successes"] == 30
        assert status.achieved["p_hat"] == pytest.approx(0.3)

    def test_exact_label_wins_over_alias(self):
        ensemble = EnsembleResult(
            n_trials=100,
            outcome_counts={"a": 10, "working[a]": 20, EnsembleResult.UNDECIDED: 70},
            final_counts=np.zeros((100, 1), dtype=np.int64),
            species=(Species("x"),),
            final_times=np.zeros(100),
            n_firings=np.zeros(100, dtype=np.int64),
        )
        status = CiHalfWidthTarget(outcome="a", half_width=0.5).evaluate(ensemble)
        assert status.achieved["successes"] == 10

    def test_sprt_uses_the_alias_too(self):
        ensemble = make_binomial_ensemble(512, 170, outcome="working[a]")
        status = SprtTarget(outcome="a", p0=0.1, p1=0.3).evaluate(ensemble)
        assert status.met
        assert status.detail == "accept-h1"

    def test_synthesized_design_estimates_the_programmed_probability(self):
        from repro import synthesize_distribution

        system = synthesize_distribution({"a": 0.3, "b": 0.7}, gamma=100)
        experiment = Experiment.from_network(
            system.network, stopping=CategoryFiringCondition("working", 10)
        )
        target = CiHalfWidthTarget(outcome="a", half_width=0.05, max_trials=4096)
        result = experiment.simulate(until=target, seed=42, chunk_size=256)
        assert result.achieved["successes"] > 0
        assert result.achieved["p_hat"] == pytest.approx(0.3, abs=0.1)


class TestWorkerInvariance:
    """The satellite contract: worker count never changes an adaptive run."""

    TARGET = CiHalfWidthTarget(outcome="1", half_width=0.06, max_trials=2048)

    @pytest.fixture(scope="class")
    def references(self, request):
        experiment = race_experiment()
        return {
            backend: experiment.simulate(
                until=self.TARGET, seed=29, chunk_size=128, workers=1,
                backend=backend,
            )
            for backend in ("python", "numpy")
        }

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_bit_identical_across_worker_counts(self, references, backend, workers):
        experiment = race_experiment()
        reference = references[backend]
        result = experiment.simulate(
            until=self.TARGET, seed=29, chunk_size=128, workers=workers,
            backend=backend,
        )
        # Chunk consumption — the controller's *decisions* — must match, not
        # just the merged statistics.
        assert result.chunks_consumed == reference.chunks_consumed
        assert result.rounds == reference.rounds
        expected = reference.to_payload()
        actual = result.to_payload()
        expected.pop("workers")
        actual.pop("workers")
        assert canonical_json(actual) == canonical_json(expected)


# -- hardening: rejected combinations ---------------------------------------------


class TestAdaptiveErrors:
    TARGET = CiHalfWidthTarget(outcome="1", half_width=0.1)

    def test_error_type_is_experiment_error(self):
        assert issubclass(AdaptiveError, ExperimentError)

    def test_rejects_non_target(self, experiment):
        with pytest.raises(AdaptiveError, match="until= must be"):
            experiment.simulate(until=42, seed=1)

    def test_rejects_unseeded(self, experiment):
        with pytest.raises(AdaptiveError, match="must be seeded"):
            experiment.simulate(until=self.TARGET)

    def test_rejects_keep_trajectories(self, experiment):
        with pytest.raises(AdaptiveError, match="keep_trajectories"):
            experiment.simulate(until=self.TARGET, seed=1, keep_trajectories=True)

    @pytest.mark.parametrize("engine", ["fsp", "ode"])
    def test_rejects_non_sampling_engines(self, experiment, engine):
        with pytest.raises(AdaptiveError, match="does not sample"):
            experiment.simulate(until=self.TARGET, seed=1, engine=engine)

    def test_rejects_splitting_on_batched_engine(self, experiment):
        config = SplittingConfig(outcome="1", trials_per_level=16)
        with pytest.raises(AdaptiveError, match="batched engine"):
            experiment.simulate(until=config, seed=1, engine="batch-direct")


# -- store identity and byte-identical caching ------------------------------------


class TestStoreIntegration:
    TARGET = CiHalfWidthTarget(outcome="1", half_width=0.06, max_trials=2048)

    def test_warm_hit_is_bit_identical(self, tmp_path, experiment):
        store = ResultStore(tmp_path / "store")
        cold = experiment.simulate(
            until=self.TARGET, seed=7, chunk_size=256, store=store, workers=1
        )
        # The warm request even asks for a different worker count: the
        # fingerprint ignores it, and the artifact comes back untouched.
        warm = experiment.simulate(
            until=self.TARGET, seed=7, chunk_size=256, store=store, workers=2
        )
        assert isinstance(warm, AdaptiveResult)
        assert canonical_json(warm.to_payload()) == canonical_json(cold.to_payload())
        assert store.stats()["artifacts"] == 1

    def test_store_round_trip_restores_adaptive_record(self, tmp_path, experiment):
        store = ResultStore(tmp_path / "store")
        cold = experiment.simulate(
            until=self.TARGET, seed=7, chunk_size=256, store=store
        )
        payload = experiment_to_payload(
            experiment, trials=1000, engine="direct", seed=7,
            chunk_size=256, until=self.TARGET,
        )
        loaded = store.load_run(fingerprint_payload(payload))
        assert isinstance(loaded, AdaptiveResult)
        assert loaded.adaptive == cold.adaptive
        assert loaded.chunks_consumed == cold.chunks_consumed

    def test_fingerprint_ignores_trial_count(self, experiment):
        payloads = [
            experiment_to_payload(
                experiment, trials=trials, engine="direct", seed=7, until=self.TARGET
            )
            for trials in (10, 100_000)
        ]
        assert payloads[0]["simulate"]["trials"] is None
        assert fingerprint_payload(payloads[0]) == fingerprint_payload(payloads[1])

    def test_fingerprint_tracks_target_parameters(self, experiment):
        narrow = CiHalfWidthTarget(outcome="1", half_width=0.05)
        narrower = CiHalfWidthTarget(outcome="1", half_width=0.01)
        keys = {
            fingerprint_payload(
                experiment_to_payload(
                    experiment, trials=100, engine="direct", seed=7, until=target
                )
            )
            for target in (narrow, narrower)
        }
        assert len(keys) == 2

    def test_fixed_runs_keep_their_historical_fingerprint(self, experiment):
        # No `until` key at all for fixed-budget payloads — adding one (even
        # as null) would shift every pre-adaptive fingerprint on disk.
        payload = experiment_to_payload(experiment, trials=100, engine="direct", seed=7)
        assert "until" not in payload["simulate"]


# -- campaign cells ---------------------------------------------------------------


class TestCampaignIntegration:
    def test_adaptive_cells_run_and_tabulate(self, tmp_path, experiment):
        from repro.store import Campaign, CampaignRunner

        target = CiHalfWidthTarget(outcome="1", half_width=0.08, max_trials=2048)
        campaign = Campaign.grid(
            "adaptive-grid", experiment, engines=("direct",), seeds=(3, 5),
            chunk_size=256, until=target,
        )
        outcome = CampaignRunner(tmp_path / "store").run(campaign)
        assert not outcome.failures()
        rows = outcome.rows()
        assert [row["trials"] for row in rows] == ["ci-half-width", "ci-half-width"]
        store = ResultStore(tmp_path / "store")
        for cell_outcome in outcome.outcomes:
            loaded = store.load_run(cell_outcome.key)
            assert isinstance(loaded, AdaptiveResult)
            assert loaded.met

    def test_resume_computes_nothing(self, tmp_path, experiment):
        from repro.store import Campaign, CampaignRunner

        target = CiHalfWidthTarget(outcome="1", half_width=0.08, max_trials=2048)
        campaign = Campaign.grid(
            "adaptive-grid", experiment, engines=("direct",), seeds=(3,),
            chunk_size=256, until=target,
        )
        runner = CampaignRunner(tmp_path / "store")
        first = runner.run(campaign)
        second = runner.run(campaign)
        assert [o.status for o in first.outcomes] == ["computed"]
        assert [o.status for o in second.outcomes] == ["cached"]
        assert first.outcomes[0].key == second.outcomes[0].key


# -- parameter sweeps -------------------------------------------------------------


class TestSweepIntegration:
    @staticmethod
    def build(_value):
        return race_experiment()

    @staticmethod
    def row(value, result):
        return {"value": value, "rule": result.stopping_rule, "met": result.met,
                "trials": result.trials}

    def test_until_threads_through_parameter_sweep(self):
        from repro.analysis import ParameterSweep

        target = CiHalfWidthTarget(outcome="1", half_width=0.08, max_trials=2048)
        sweep = ParameterSweep.over_experiments(
            "x", [1, 2], self.build, row=self.row,
            seed=5, chunk_size=256, until=target,
        )
        rows = sweep.run().rows
        assert len(rows) == 2
        assert all(row["rule"] == "ci-half-width" and row["met"] for row in rows)


# -- the HTTP service -------------------------------------------------------------


class TestServiceIntegration:
    @pytest.fixture
    def service(self, tmp_path):
        from repro.service import ResultService

        service = ResultService(tmp_path / "store", port=0, quiet=True).start()
        yield service
        service.stop()

    def test_adaptive_round_trip_over_the_wire(self, service, experiment):
        from repro.client import ServiceClient

        client = ServiceClient(service.url, timeout=120.0)
        target = CiHalfWidthTarget(outcome="1", half_width=0.08, max_trials=2048)
        kwargs = dict(engine="direct", seed=7, chunk_size=256, until=target)
        miss = client.simulate_entry(experiment, **kwargs)
        hit = client.simulate_entry(experiment, **kwargs)
        assert not miss.cached and hit.cached
        assert miss.key == hit.key
        for reply in (miss, hit):
            assert isinstance(reply.result, AdaptiveResult)
            assert reply.result.met
        assert canonical_json(hit.result.to_payload()) == canonical_json(
            miss.result.to_payload()
        )

    def test_reply_flags_adaptive_runs(self, service, experiment):
        from repro.client import ServiceClient

        client = ServiceClient(service.url, timeout=120.0)
        target = CiHalfWidthTarget(outcome="1", half_width=0.08, max_trials=2048)
        payload = experiment_to_payload(
            experiment, trials=100, engine="direct", seed=7,
            chunk_size=256, until=target,
        )
        document = client._request("/simulate", body={"experiment": payload})
        assert document["adaptive"] is True
        fixed = experiment_to_payload(experiment, trials=64, engine="direct", seed=7)
        document = client._request("/simulate", body={"experiment": fixed})
        assert document["adaptive"] is False


# -- result payload round trip ----------------------------------------------------


class TestAdaptiveResultPayload:
    def test_json_round_trip_dispatches_to_adaptive(self, experiment):
        from repro.api import RunResult

        target = CiHalfWidthTarget(outcome="1", half_width=0.08, max_trials=2048)
        result = experiment.simulate(until=target, seed=7, chunk_size=256)
        restored = RunResult.from_json(result.to_json())
        assert isinstance(restored, AdaptiveResult)
        assert restored.to_json() == result.to_json()
        assert restored.adaptive == result.adaptive

    def test_fixed_results_stay_plain(self, experiment):
        from repro.api import RunResult

        result = experiment.simulate(trials=64, seed=7)
        restored = RunResult.from_json(result.to_json())
        assert type(restored) is RunResult

    def test_info_round_trip(self):
        info = AdaptiveInfo(
            rule="sprt", until={"type": "sprt"}, chunks=4, rounds=3,
            met=True, detail="accept-h0", achieved={"n": 256.0},
            rare=None,
        )
        assert AdaptiveInfo.from_payload(info.to_payload()) == info


# -- CLI flags --------------------------------------------------------------------


class TestCliFlags:
    def parse(self, *argv):
        from repro.cli import _until_from, build_parser

        args = build_parser().parse_args(["simulate", "net.json", *argv])
        return _until_from(args)

    def test_no_flags_means_fixed_budget(self):
        assert self.parse() is None

    def test_ci_half_width_flags(self):
        target = self.parse(
            "--until-ci-halfwidth", "0.02", "--until-outcome", "1",
            "--until-confidence", "0.9", "--until-max-trials", "5000",
        )
        assert target == CiHalfWidthTarget(
            outcome="1", half_width=0.02, confidence=0.9, max_trials=5000
        )

    def test_rel_se_flags(self):
        target = self.parse("--until-rel-se", "0.05", "--until-species", "d1")
        assert target == RelativeSETarget(
            species="d1", rel_se=0.05, max_trials=DEFAULT_MAX_TRIALS
        )

    def test_splitting_flags(self):
        target = self.parse(
            "--splitting-trials", "128", "--until-outcome", "rare",
            "--splitting-levels", "4",
        )
        assert target == SplittingConfig(
            outcome="rare", trials_per_level=128, n_levels=4, confidence=0.95
        )

    @pytest.mark.parametrize(
        ("argv", "message"),
        [
            (
                ["--until-ci-halfwidth", "0.1", "--until-rel-se", "0.1",
                 "--until-outcome", "1", "--until-species", "d1"],
                "mutually exclusive",
            ),
            (["--until-ci-halfwidth", "0.1"], "requires --until-outcome"),
            (["--until-rel-se", "0.1"], "requires --until-species"),
            (["--splitting-trials", "64"], "requires --until-outcome"),
            (["--splitting-levels", "4"], "requires --splitting-trials"),
        ],
    )
    def test_flag_conflicts(self, argv, message):
        with pytest.raises(argparse.ArgumentTypeError, match=message):
            self.parse(*argv)

    def test_example1_runs_adaptively(self, capsys):
        from repro.cli import main

        code = main([
            "example1", "--until-ci-halfwidth", "0.1",
            "--until-outcome", "1", "--seed", "7",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "adaptive [ci-half-width]" in out
