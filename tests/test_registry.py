"""Tests for the capability-aware engine registry (repro.sim.registry)."""

from __future__ import annotations

import pytest

from repro.crn import parse_network
from repro.errors import EnsembleError
from repro.sim import EnsembleRunner, TauLeapOptions, make_simulator
from repro.sim.direct import DirectMethodSimulator
from repro.sim.ode import OdeOptions
from repro.sim.registry import EngineRegistry, register_engine, registry


BUILTIN = {
    "direct",
    "first-reaction",
    "next-reaction",
    "tau-leaping",
    "batch-direct",
    "ode",
}


@pytest.fixture
def race_net():
    return parse_network("init: a = 10\na ->{1} b")


class TestRegistryContents:
    def test_builtin_engines_registered(self):
        assert BUILTIN <= set(registry.names())

    def test_per_trial_and_batched_partition(self):
        per_trial = set(registry.per_trial_names())
        batched = set(registry.batched_names())
        assert per_trial | batched == set(registry.names())
        assert per_trial.isdisjoint(batched)
        assert "batch-direct" in batched
        assert "direct" in per_trial

    def test_mapping_protocol(self):
        assert "direct" in registry
        assert "bogus" not in registry
        assert len(registry) >= len(BUILTIN)
        assert sorted(registry) == registry.names()

    def test_capability_matrix(self):
        rows = {row["engine"]: row for row in registry.capability_matrix()}
        assert rows["direct"]["exact"] and rows["direct"]["events"]
        assert rows["batch-direct"]["batched"] and rows["batch-direct"]["exact"]
        assert rows["tau-leaping"]["approximate"]
        assert rows["tau-leaping"]["options"] == "TauLeapOptions"
        assert rows["ode"]["deterministic"] and not rows["ode"]["events"]

    def test_info_fields(self):
        info = registry.get("tau-leaping")
        assert info.options_type is TauLeapOptions
        assert info.options_param == "leap_options"
        assert info.summary


class TestResolution:
    def test_unknown_engine_lists_dynamic_names_and_suggests(self, race_net):
        with pytest.raises(EnsembleError) as excinfo:
            make_simulator(race_net, engine="dirct")
        message = str(excinfo.value)
        for name in sorted(BUILTIN):
            assert name in message
        assert "did you mean 'direct'?" in message

    def test_unknown_engine_without_close_match(self, race_net):
        with pytest.raises(EnsembleError) as excinfo:
            make_simulator(race_net, engine="zzzzzz")
        assert "did you mean" not in str(excinfo.value)

    def test_engine_options_reach_the_engine(self, race_net):
        options = TauLeapOptions(epsilon=0.01, critical_threshold=5)
        simulator = make_simulator(race_net, engine="tau-leaping", engine_options=options)
        assert simulator.leap_options.epsilon == 0.01
        assert simulator.leap_options.critical_threshold == 5

    def test_engine_options_rejected_by_optionless_engine(self, race_net):
        with pytest.raises(EnsembleError, match="does not accept engine options"):
            make_simulator(race_net, engine="direct", engine_options=TauLeapOptions())

    def test_engine_options_type_checked(self, race_net):
        with pytest.raises(EnsembleError, match="expects engine_options of type"):
            make_simulator(race_net, engine="tau-leaping", engine_options=OdeOptions())

    def test_ensemble_runner_validates_options_at_construction(self, race_net):
        with pytest.raises(EnsembleError, match="does not accept engine options"):
            EnsembleRunner(race_net, engine="direct", engine_options=TauLeapOptions())

    def test_ensemble_rejects_deterministic_engine(self, race_net):
        with pytest.raises(EnsembleError, match="deterministic"):
            EnsembleRunner(race_net, engine="ode")


class TestThirdPartyRegistration:
    def test_register_run_and_unregister(self, race_net):
        @register_engine("test-custom-direct", exact=True, summary="test engine")
        class CustomDirect(DirectMethodSimulator):
            method_name = "test-custom-direct"

        try:
            assert "test-custom-direct" in registry
            # Selectable through the ensemble layer without editing it.
            result = EnsembleRunner(race_net, engine="test-custom-direct").run(
                20, seed=3
            )
            assert result.n_trials == 20
            # And through the facade.
            from repro.api import Experiment

            run = Experiment.from_network(race_net).simulate(
                trials=10, engine="test-custom-direct", seed=4
            )
            assert run.ensemble.n_trials == 10
        finally:
            registry.unregister("test-custom-direct")
        assert "test-custom-direct" not in registry

    def test_duplicate_registration_rejected(self):
        with pytest.raises(EnsembleError, match="already registered"):
            register_engine("direct", exact=True)(DirectMethodSimulator)

    def test_independent_registry_instances(self):
        fresh = EngineRegistry()

        @fresh.register("only-here", exact=True)
        class Local(DirectMethodSimulator):
            pass

        assert fresh.names() == ["only-here"]
        assert "only-here" not in registry
