"""Tests for the Monte-Carlo ensemble runner (repro.sim.ensemble)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crn import parse_network
from repro.errors import EnsembleError
from repro.sim import (
    EnsembleResult,
    EnsembleRunner,
    OutcomeThresholds,
    run_ensemble,
)


@pytest.fixture
def decision_network():
    """Two-way race: a wins 70% of the time (70 vs 30 molecules, equal rates)."""
    return parse_network(
        """
        init: ea = 70
        init: eb = 30
        ea ->{1} wa
        eb ->{1} wb
        """
    )


@pytest.fixture
def decision_condition():
    return OutcomeThresholds({"A": ("wa", 1), "B": ("wb", 1)})


class TestEnsembleRunner:
    def test_outcome_distribution(self, decision_network, decision_condition):
        result = run_ensemble(
            decision_network, 800, stopping=decision_condition, seed=1
        )
        distribution = result.outcome_distribution()
        assert distribution["A"] == pytest.approx(0.7, abs=0.05)
        assert distribution["B"] == pytest.approx(0.3, abs=0.05)
        assert result.decided_fraction() == 1.0

    def test_outcome_counts_sum_to_trials(self, decision_network, decision_condition):
        result = run_ensemble(decision_network, 100, stopping=decision_condition, seed=2)
        assert sum(result.outcome_counts.values()) == result.n_trials == 100

    def test_reproducible_with_seed(self, decision_network, decision_condition):
        r1 = run_ensemble(decision_network, 100, stopping=decision_condition, seed=5)
        r2 = run_ensemble(decision_network, 100, stopping=decision_condition, seed=5)
        assert r1.outcome_counts == r2.outcome_counts
        np.testing.assert_array_equal(r1.final_counts, r2.final_counts)

    def test_different_seeds_differ(self, decision_network, decision_condition):
        r1 = run_ensemble(decision_network, 200, stopping=decision_condition, seed=5)
        r2 = run_ensemble(decision_network, 200, stopping=decision_condition, seed=6)
        assert r1.outcome_counts != r2.outcome_counts or not np.array_equal(
            r1.final_times, r2.final_times
        )

    def test_undecided_without_condition(self, decision_network):
        result = run_ensemble(decision_network, 20, seed=3)
        assert result.outcome_counts == {EnsembleResult.UNDECIDED: 20}
        assert result.decided_fraction() == 0.0
        assert result.outcome_distribution() == {}
        assert result.outcome_distribution(include_undecided=True) == {
            EnsembleResult.UNDECIDED: 1.0
        }

    def test_custom_classifier(self, decision_network):
        runner = EnsembleRunner(
            decision_network,
            outcome_classifier=lambda t: "big" if t.final_count("wa") > 0 else "small",
        )
        result = runner.run(30, seed=4)
        assert set(result.outcome_counts) <= {"big", "small"}

    def test_species_statistics(self, decision_network, decision_condition):
        result = run_ensemble(decision_network, 200, stopping=decision_condition, seed=7)
        assert 0.6 < result.mean_final("wa") < 0.8            # wins 70% of races
        assert result.std_final("wa") > 0
        histogram = result.final_histogram("wa")
        assert set(histogram) <= {0, 1}
        assert result.threshold_fraction("wa", 1) == pytest.approx(
            result.outcome_frequency("A")
        )

    def test_unknown_species_raises(self, decision_network, decision_condition):
        result = run_ensemble(decision_network, 10, stopping=decision_condition, seed=8)
        with pytest.raises(EnsembleError):
            result.mean_final("nope")

    def test_keep_trajectories(self, decision_network, decision_condition):
        result = run_ensemble(
            decision_network, 5, stopping=decision_condition, seed=9, keep_trajectories=True
        )
        assert len(result.trajectories) == 5

    def test_trials_validation(self, decision_network):
        with pytest.raises(EnsembleError):
            run_ensemble(decision_network, 0)

    def test_engine_selection(self, decision_network, decision_condition):
        result = run_ensemble(
            decision_network, 200, stopping=decision_condition, seed=10, engine="next-reaction"
        )
        assert result.outcome_distribution()["A"] == pytest.approx(0.7, abs=0.08)

    def test_initial_state_override(self, decision_network, decision_condition):
        result = run_ensemble(decision_network, 200, stopping=decision_condition, seed=11)
        runner = EnsembleRunner(decision_network, stopping=decision_condition)
        flipped = runner.run(200, seed=11, initial_state={"ea": 30, "eb": 70})
        assert flipped.outcome_distribution()["A"] < result.outcome_distribution()["A"]

    def test_summary_text(self, decision_network, decision_condition):
        result = run_ensemble(decision_network, 50, stopping=decision_condition, seed=12)
        text = result.summary()
        assert "Ensemble of 50 trials" in text
        assert "A" in text and "B" in text
