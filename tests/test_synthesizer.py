"""Tests for the top-level synthesis API (repro.core.synthesizer)."""

from __future__ import annotations

import pytest

from repro.core import (
    AffineResponseSpec,
    OutcomeSpec,
    synthesize_affine_response,
    synthesize_distribution,
    verify_by_sampling,
)
from repro.errors import SpecificationError, SynthesisError


class TestSynthesizeDistribution:
    def test_accepts_mapping(self):
        system = synthesize_distribution({"a": 0.25, "b": 0.75})
        assert system.labels == ("a", "b")
        assert system.target_distribution() == {"a": 0.25, "b": 0.75}

    def test_accepts_sequence_with_default_labels(self):
        system = synthesize_distribution([0.5, 0.5])
        assert system.labels == ("1", "2")

    def test_accepts_spec(self, example1_spec):
        system = synthesize_distribution(example1_spec, gamma=500.0, scale=50)
        assert system.gamma == 500.0
        assert system.scale == 50
        assert sum(system.network.initial_count(system.input_species(l))
                   for l in system.labels) == 50

    def test_species_helpers(self):
        system = synthesize_distribution({"win": 0.5, "lose": 0.5})
        assert system.input_species("win") == "e_win"
        assert system.catalyst_species("lose") == "d_lose"
        assert system.working_reaction_name("win") == "working[win]"
        assert system.rate_ladder().gamma == system.gamma

    def test_describe_mentions_outcomes(self):
        text = synthesize_distribution({"a": 0.3, "b": 0.7}).describe()
        assert "a" in text and "b" in text and "gamma" in text

    def test_sampled_distribution_matches_target(self):
        system = synthesize_distribution({"a": 0.2, "b": 0.8}, gamma=1e3, scale=100)
        sampled = system.sample_distribution(n_trials=400, seed=21)
        assert sampled.frequencies["b"] == pytest.approx(0.8, abs=0.07)
        assert sampled.total_variation_distance() < 0.08
        assert "TV distance" in sampled.summary()

    def test_classify_outcome_fallback_uses_catalyst(self):
        system = synthesize_distribution({"a": 0.5, "b": 0.5})
        # Simulate without the working stopping condition: classification falls
        # back to the dominant catalyst.
        from repro.sim import DirectMethodSimulator, SimulationOptions

        trajectory = DirectMethodSimulator(system.network, seed=3).run(
            options=SimulationOptions(max_steps=5000, record_firings=False)
        )
        assert system.classify_outcome(trajectory) in {"a", "b"}

    def test_network_with_inputs_rejects_unknown_species(self):
        system = synthesize_distribution({"a": 0.5, "b": 0.5})
        with pytest.raises(SynthesisError):
            system.network_with_inputs({"zzz": 1})

    def test_verification_report(self):
        system = synthesize_distribution({"a": 0.3, "b": 0.7}, gamma=1e3)
        report = verify_by_sampling(system, n_trials=300, seed=5, tolerance=0.1)
        assert report.passed
        assert report.tv_distance < 0.1
        assert 0 <= report.chi2_pvalue <= 1
        assert "PASS" in report.summary()


class TestSynthesizeAffineResponse:
    @pytest.fixture
    def example2(self) -> AffineResponseSpec:
        return AffineResponseSpec(
            base={"1": 0.3, "2": 0.4, "3": 0.3},
            slopes={"1": {"x1": 0.02, "x2": -0.03}, "2": {"x2": 0.03}, "3": {"x1": -0.02}},
        )

    def test_preprocessing_reactions_added(self, example2):
        system = synthesize_affine_response(example2)
        preprocessing = system.network.reactions_in_category("preprocessing")
        assert len(preprocessing) == 2        # one per external input
        assert system.preprocessing is not None
        assert system.affine is example2

    def test_example2_reaction_shapes(self, example2):
        """The compiled reactions are 2·e3 + x1 → 2·e1 and 3·e1 + x2 → 3·e2."""
        system = synthesize_affine_response(example2)
        compiled = {
            tuple(sorted((s.name, c) for s, c in r.reactants.items())): r
            for _, r in system.network.reactions_in_category("preprocessing")
        }
        key_x1 = (("e_3", 2), ("x1", 1))
        key_x2 = (("e_1", 3), ("x2", 1))
        assert key_x1 in compiled and key_x2 in compiled
        assert {s.name: c for s, c in compiled[key_x1].products.items()} == {"e_1": 2}
        assert {s.name: c for s, c in compiled[key_x2].products.items()} == {"e_2": 3}

    def test_external_inputs_default_to_zero(self, example2):
        system = synthesize_affine_response(example2)
        assert system.network.initial_count("x1") == 0
        assert system.network.initial_count("x2") == 0

    def test_target_distribution_tracks_inputs(self, example2):
        system = synthesize_affine_response(example2)
        assert system.target_distribution() == pytest.approx(
            {"1": 0.3, "2": 0.4, "3": 0.3}
        )
        shifted = system.target_distribution({"x1": 5})
        assert shifted["1"] == pytest.approx(0.4)
        assert shifted["3"] == pytest.approx(0.2)

    def test_sampling_with_inputs_shifts_distribution(self, example2):
        system = synthesize_affine_response(example2, gamma=1e3)
        baseline = system.sample_distribution(n_trials=300, seed=31)
        shifted = system.sample_distribution(n_trials=300, seed=32, inputs={"x1": 10})
        assert shifted.frequencies["1"] > baseline.frequencies["1"]
        assert shifted.frequencies["3"] < baseline.frequencies["3"]
        assert shifted.total_variation_distance() < 0.1

    def test_non_representable_slope_rejected(self):
        spec = AffineResponseSpec(
            base={"a": 0.5, "b": 0.5},
            slopes={"a": {"x": 0.0213}, "b": {"x": -0.0213}},
        )
        with pytest.raises(SpecificationError):
            synthesize_affine_response(spec, scale=100)

    def test_outcome_specs_must_match_labels(self, example2):
        with pytest.raises(SpecificationError):
            synthesize_affine_response(
                example2, outcomes=[OutcomeSpec("wrong"), OutcomeSpec("2"), OutcomeSpec("3")]
            )

    def test_metadata_records_affine_design(self, example2):
        system = synthesize_affine_response(example2)
        recorded = system.network.metadata["affine_response"]
        assert recorded["base"] == {"1": 0.3, "2": 0.4, "3": 0.3}
        assert len(recorded["transfers"]) == 2
