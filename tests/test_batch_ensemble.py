"""Tests for the batched engine, parallel ensemble runner and Welford merge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crn import parse_network
from repro.errors import EnsembleError, SimulationError
from repro.sim import (
    BatchDirectEngine,
    EnsembleResult,
    EnsembleRunner,
    OutcomeThresholds,
    ParallelEnsembleRunner,
    RunningMoments,
    SimulationOptions,
    SpeciesThreshold,
    StopReason,
    make_simulator,
    run_ensemble,
)


@pytest.fixture
def two_outcome_network():
    """Two-way race: A wins with probability 0.7 (70 vs 30 molecules, equal rates)."""
    return parse_network(
        """
        init: ea = 70
        init: eb = 30
        ea ->{1} wa
        eb ->{1} wb
        """
    )


@pytest.fixture
def two_outcome_condition():
    return OutcomeThresholds({"A": ("wa", 1), "B": ("wb", 1)})


def chi_squared(observed: dict[str, int], expected: dict[str, float], n: int) -> float:
    """Pearson chi-squared statistic of observed counts vs expected probabilities."""
    return sum(
        (observed.get(label, 0) - n * p) ** 2 / (n * p) for label, p in expected.items()
    )


class TestBatchDirectEngine:
    def test_matches_direct_method_chi_squared(
        self, two_outcome_network, two_outcome_condition
    ):
        """Batch engine agrees with DirectMethodSimulator on the reference race.

        Both engines sample the same exact SSA, whose first-firing outcome
        probability is 70/100 = 0.7.  Each engine's outcome counts are tested
        against that reference with a chi-squared tolerance (df=1, the 99.9%
        critical value is 10.83), and against each other via a two-sample
        chi-squared.
        """
        n = 2000
        expected = {"A": 0.7, "B": 0.3}
        counts = {}
        for engine in ("direct", "batch-direct"):
            result = run_ensemble(
                two_outcome_network, n, stopping=two_outcome_condition,
                engine=engine, seed=101,
            )
            assert sum(result.outcome_counts.values()) == n
            assert result.decided_fraction() == 1.0
            assert chi_squared(result.outcome_counts, expected, n) < 10.83
            counts[engine] = result.outcome_counts
        # Two-sample chi-squared between the engines (df=1).
        stat = sum(
            (counts["direct"].get(k, 0) - counts["batch-direct"].get(k, 0)) ** 2
            / (counts["direct"].get(k, 0) + counts["batch-direct"].get(k, 0))
            for k in ("A", "B")
        )
        assert stat < 10.83

    def test_reproducible_with_seed(self, two_outcome_network, two_outcome_condition):
        r1 = run_ensemble(
            two_outcome_network, 200, stopping=two_outcome_condition,
            engine="batch-direct", seed=5,
        )
        r2 = run_ensemble(
            two_outcome_network, 200, stopping=two_outcome_condition,
            engine="batch-direct", seed=5,
        )
        assert r1.outcome_counts == r2.outcome_counts
        np.testing.assert_array_equal(r1.final_counts, r2.final_counts)
        np.testing.assert_array_equal(r1.final_times, r2.final_times)

    def test_exhaustion_and_conservation(self, two_outcome_network):
        """Without a stopping condition every trial exhausts with all 100 conversions."""
        engine = BatchDirectEngine(two_outcome_network)
        batch = engine.run_batch(50, seed=3)
        assert all(reason == StopReason.EXHAUSTED for reason in batch.stop_reasons)
        np.testing.assert_array_equal(batch.firing_counts.sum(axis=1), 100)
        np.testing.assert_array_equal(batch.final_counts.sum(axis=1), 100)

    def test_max_time_stops_at_horizon(self, two_outcome_network):
        engine = BatchDirectEngine(two_outcome_network)
        batch = engine.run_batch(
            30, options=SimulationOptions(max_time=1e-4, record_firings=False), seed=4
        )
        assert all(reason == StopReason.MAX_TIME for reason in batch.stop_reasons)
        np.testing.assert_allclose(batch.final_times, 1e-4)

    def test_max_steps_guard(self, birth_death_network):
        engine = BatchDirectEngine(birth_death_network)
        batch = engine.run_batch(
            10, options=SimulationOptions(max_steps=25, record_firings=False), seed=6
        )
        assert all(reason == StopReason.MAX_STEPS for reason in batch.stop_reasons)
        np.testing.assert_array_equal(batch.firing_counts.sum(axis=1), 25)

    def test_condition_already_met_at_t0(self, two_outcome_network):
        engine = BatchDirectEngine(two_outcome_network)
        batch = engine.run_batch(
            5, stopping=SpeciesThreshold("ea", 1, label="preloaded"), seed=7
        )
        assert all(reason == StopReason.CONDITION for reason in batch.stop_reasons)
        assert all(detail == "preloaded" for detail in batch.stop_details)
        np.testing.assert_array_equal(batch.final_times, 0.0)
        np.testing.assert_array_equal(batch.firing_counts.sum(axis=1), 0)

    def test_single_run_is_trajectory_dropin(self, two_outcome_network, two_outcome_condition):
        simulator = make_simulator(two_outcome_network, engine="batch-direct")
        trajectory = simulator.run(
            stopping=two_outcome_condition,
            options=SimulationOptions(record_firings=False),
            seed=8,
        )
        assert trajectory.stop_reason == StopReason.CONDITION
        assert trajectory.stop_detail in ("A", "B")
        assert int(trajectory.firing_counts.sum()) >= 1

    def test_firing_log_request_raises(self, two_outcome_network):
        engine = BatchDirectEngine(two_outcome_network)
        with pytest.raises(SimulationError):
            engine.run_batch(5, options=SimulationOptions(record_firings=True))
        with pytest.raises(SimulationError):
            engine.run_batch(
                5, options=SimulationOptions(record_firings=False, record_states=True)
            )

    def test_generic_stopping_fallback(self, two_outcome_network):
        """Conditions without a vectorized form fall back to per-trial checks."""
        from repro.sim import PredicateCondition

        stopping = PredicateCondition(
            lambda time, state: "done" if state["wa"] + state["wb"] >= 10 else None
        )
        engine = BatchDirectEngine(two_outcome_network)
        batch = engine.run_batch(20, stopping=stopping, seed=9)
        assert all(reason == StopReason.CONDITION for reason in batch.stop_reasons)
        np.testing.assert_array_equal(batch.firing_counts.sum(axis=1), 10)

    def test_initial_state_override(self, two_outcome_network, two_outcome_condition):
        runner = EnsembleRunner(
            two_outcome_network, engine="batch-direct", stopping=two_outcome_condition
        )
        baseline = runner.run(400, seed=11)
        flipped = runner.run(400, seed=11, initial_state={"ea": 30, "eb": 70})
        assert flipped.outcome_frequency("A") < baseline.outcome_frequency("A")


class TestParallelEnsembleRunner:
    def test_identical_across_worker_counts_per_trial_engine(
        self, two_outcome_network, two_outcome_condition
    ):
        results = [
            ParallelEnsembleRunner(
                two_outcome_network,
                stopping=two_outcome_condition,
                workers=workers,
                chunk_size=64,
            ).run(300, seed=21)
            for workers in (1, 2, 3)
        ]
        for other in results[1:]:
            assert results[0].outcome_counts == other.outcome_counts
            np.testing.assert_array_equal(results[0].final_counts, other.final_counts)
            np.testing.assert_array_equal(results[0].final_times, other.final_times)

    def test_parallel_equals_sequential(self, two_outcome_network, two_outcome_condition):
        """For per-trial engines, sharding reproduces the sequential runner exactly."""
        sequential = EnsembleRunner(
            two_outcome_network, stopping=two_outcome_condition
        ).run(300, seed=22)
        parallel = ParallelEnsembleRunner(
            two_outcome_network, stopping=two_outcome_condition, workers=2, chunk_size=100
        ).run(300, seed=22)
        assert sequential.outcome_counts == parallel.outcome_counts
        np.testing.assert_array_equal(sequential.final_counts, parallel.final_counts)

    def test_identical_across_worker_counts_batch_engine(
        self, two_outcome_network, two_outcome_condition
    ):
        results = [
            ParallelEnsembleRunner(
                two_outcome_network,
                engine="batch-direct",
                stopping=two_outcome_condition,
                workers=workers,
                chunk_size=64,
            ).run(300, seed=23)
            for workers in (1, 4)
        ]
        assert results[0].outcome_counts == results[1].outcome_counts
        np.testing.assert_array_equal(results[0].final_counts, results[1].final_counts)

    def test_merged_moments_match_numpy(self, two_outcome_network, two_outcome_condition):
        result = ParallelEnsembleRunner(
            two_outcome_network,
            engine="batch-direct",
            stopping=two_outcome_condition,
            workers=2,
            chunk_size=50,
        ).run(250, seed=24)
        assert result.moments is not None
        assert result.moments.count == 250
        np.testing.assert_allclose(result.moments.mean, result.final_counts.mean(axis=0))
        np.testing.assert_allclose(
            result.moments.variance(), result.final_counts.var(axis=0, ddof=1)
        )

    def test_validation(self, two_outcome_network):
        with pytest.raises(EnsembleError):
            ParallelEnsembleRunner(two_outcome_network, chunk_size=0)
        with pytest.raises(EnsembleError):
            ParallelEnsembleRunner(two_outcome_network, workers=0)
        with pytest.raises(EnsembleError):
            ParallelEnsembleRunner(two_outcome_network).run(0)
        with pytest.raises(EnsembleError):
            EnsembleRunner(two_outcome_network, engine="no-such-engine")

    def test_run_ensemble_workers_shortcut(self, two_outcome_network, two_outcome_condition):
        result = run_ensemble(
            two_outcome_network, 150, stopping=two_outcome_condition, seed=25, workers=2
        )
        assert result.n_trials == 150
        assert sum(result.outcome_counts.values()) == 150


class TestEnsembleResultMerge:
    def test_merge_concatenates_in_order(self, two_outcome_network, two_outcome_condition):
        runner = EnsembleRunner(two_outcome_network, stopping=two_outcome_condition)
        a = runner._run_range(100, 31, 0, 60, None, False)
        b = runner._run_range(100, 31, 60, 100, None, False)
        whole = runner.run(100, seed=31)
        merged = EnsembleResult.merge([a, b])
        assert merged.n_trials == 100
        assert merged.outcome_counts == whole.outcome_counts
        np.testing.assert_array_equal(merged.final_counts, whole.final_counts)
        np.testing.assert_allclose(merged.moments.mean, whole.moments.mean)
        np.testing.assert_allclose(merged.moments.variance(), whole.moments.variance())

    def test_merge_empty_raises(self):
        with pytest.raises(EnsembleError):
            EnsembleResult.merge([])

    def test_merge_empty_raises_value_error(self):
        # Regression: an empty shard list must fail with a *clear* ValueError
        # (campaign aggregation and user code catch the built-in type), not
        # an opaque IndexError from shards[0].
        with pytest.raises(ValueError, match="empty list of ensemble shards"):
            EnsembleResult.merge([])
        with pytest.raises(ValueError, match="empty list of ensemble shards"):
            EnsembleResult.merge(iter(()))


class TestRunningMoments:
    def test_welford_matches_numpy(self):
        rng = np.random.default_rng(0)
        samples = rng.integers(0, 50, size=(200, 4)).astype(float)
        moments = RunningMoments(4)
        for row in samples:
            moments.update(row)
        np.testing.assert_allclose(moments.mean, samples.mean(axis=0))
        np.testing.assert_allclose(moments.variance(), samples.var(axis=0, ddof=1))

    def test_merge_matches_single_pass(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(10.0, 3.0, size=(301, 3))
        # Uneven three-way split exercises the Chan et al. merge.
        parts = np.split(samples, [40, 173])
        merged = RunningMoments(3)
        for part in parts:
            merged.merge(RunningMoments.from_samples(part))
        np.testing.assert_allclose(merged.mean, samples.mean(axis=0))
        np.testing.assert_allclose(merged.variance(), samples.var(axis=0, ddof=1))
        np.testing.assert_allclose(merged.std(), samples.std(axis=0, ddof=1))

    def test_merge_with_empty_is_identity(self):
        samples = np.arange(12.0).reshape(4, 3)
        moments = RunningMoments.from_samples(samples).merge(RunningMoments(3))
        np.testing.assert_allclose(moments.mean, samples.mean(axis=0))
        assert moments.count == 4

    def test_variance_needs_two_samples(self):
        moments = RunningMoments(2)
        moments.update([1.0, 2.0])
        assert np.isnan(moments.variance()).all()
