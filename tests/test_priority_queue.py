"""Tests (including property-based tests) for the indexed priority queue."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import IndexedPriorityQueue


class TestBasics:
    def test_min_of_initial_keys(self):
        q = IndexedPriorityQueue([3.0, 1.0, 2.0])
        assert q.min() == (1, 1.0)

    def test_update_raises_key(self):
        q = IndexedPriorityQueue([3.0, 1.0, 2.0])
        q.update(1, 5.0)
        assert q.min() == (2, 2.0)

    def test_update_lowers_key(self):
        q = IndexedPriorityQueue([3.0, 1.0, 2.0])
        q.update(0, 0.5)
        assert q.min() == (0, 0.5)

    def test_key_lookup(self):
        q = IndexedPriorityQueue([3.0, 1.0])
        assert q.key(0) == 3.0
        q.update(0, 9.0)
        assert q.key(0) == 9.0

    def test_infinite_keys_supported(self):
        q = IndexedPriorityQueue([math.inf, 2.0, math.inf])
        assert q.min() == (1, 2.0)
        assert q.finite_items() == [1]

    def test_empty_queue_min_raises(self):
        with pytest.raises(IndexError):
            IndexedPriorityQueue([]).min()

    def test_len_and_as_dict(self):
        q = IndexedPriorityQueue([1.0, 2.0])
        assert len(q) == 2
        assert q.as_dict() == {0: 1.0, 1: 2.0}

    def test_is_valid_after_operations(self):
        q = IndexedPriorityQueue([5.0, 4.0, 3.0, 2.0, 1.0])
        assert q.is_valid()
        q.update(4, 10.0)
        q.update(0, 0.0)
        assert q.is_valid()


@settings(max_examples=200, deadline=None)
@given(keys=st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=40))
def test_property_min_matches_python_min(keys):
    q = IndexedPriorityQueue(keys)
    item, key = q.min()
    assert key == min(keys)
    assert keys[item] == key
    assert q.is_valid()


@settings(max_examples=200, deadline=None)
@given(
    keys=st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=25),
    updates=st.lists(
        st.tuples(st.integers(min_value=0, max_value=24), st.floats(min_value=0, max_value=1e6)),
        max_size=30,
    ),
)
def test_property_updates_preserve_heap_invariant(keys, updates):
    q = IndexedPriorityQueue(keys)
    shadow = list(keys)
    for item, new_key in updates:
        item = item % len(shadow)
        q.update(item, new_key)
        shadow[item] = new_key
        assert q.is_valid()
        min_item, min_key = q.min()
        assert min_key == min(shadow)
        assert shadow[min_item] == min_key
