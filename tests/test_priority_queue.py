"""Tests (including property-based tests) for the indexed priority queues.

Two implementations of the Gibson–Bruck indexed priority queue exist —
the object-level :class:`IndexedPriorityQueue` and the ndarray-backed
:class:`ArrayHeap` the kernel backends drive.  Both run the identical
algorithm, so beyond per-class unit tests this module asserts *operation
by operation* equivalence (same layouts, same minima, even under ties)
and that the numpy next-reaction kernel produces bit-identical seeded
trajectories no matter which queue it is wired to, across the whole
conformance corpus.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import ArrayHeap, IndexedPriorityQueue, make_simulator

QUEUE_CLASSES = [IndexedPriorityQueue, ArrayHeap]


@pytest.mark.parametrize("queue_class", QUEUE_CLASSES)
class TestBasics:
    def test_min_of_initial_keys(self, queue_class):
        q = queue_class([3.0, 1.0, 2.0])
        assert q.min() == (1, 1.0)

    def test_update_raises_key(self, queue_class):
        q = queue_class([3.0, 1.0, 2.0])
        q.update(1, 5.0)
        assert q.min() == (2, 2.0)

    def test_update_lowers_key(self, queue_class):
        q = queue_class([3.0, 1.0, 2.0])
        q.update(0, 0.5)
        assert q.min() == (0, 0.5)

    def test_key_lookup(self, queue_class):
        q = queue_class([3.0, 1.0])
        assert q.key(0) == 3.0
        q.update(0, 9.0)
        assert q.key(0) == 9.0

    def test_infinite_keys_supported(self, queue_class):
        q = queue_class([math.inf, 2.0, math.inf])
        assert q.min() == (1, 2.0)
        assert q.finite_items() == [1]

    def test_empty_queue_min_raises(self, queue_class):
        with pytest.raises(IndexError):
            queue_class([]).min()

    def test_len_and_as_dict(self, queue_class):
        q = queue_class([1.0, 2.0])
        assert len(q) == 2
        assert q.as_dict() == {0: 1.0, 1: 2.0}

    def test_is_valid_after_operations(self, queue_class):
        q = queue_class([5.0, 4.0, 3.0, 2.0, 1.0])
        assert q.is_valid()
        q.update(4, 10.0)
        q.update(0, 0.0)
        assert q.is_valid()


@pytest.mark.parametrize("queue_class", QUEUE_CLASSES)
@settings(max_examples=200, deadline=None)
@given(keys=st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=40))
def test_property_min_matches_python_min(queue_class, keys):
    q = queue_class(keys)
    item, key = q.min()
    assert key == min(keys)
    assert keys[item] == key
    assert q.is_valid()


@pytest.mark.parametrize("queue_class", QUEUE_CLASSES)
@settings(max_examples=200, deadline=None)
@given(
    keys=st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=25),
    updates=st.lists(
        st.tuples(st.integers(min_value=0, max_value=24), st.floats(min_value=0, max_value=1e6)),
        max_size=30,
    ),
)
def test_property_updates_preserve_heap_invariant(queue_class, keys, updates):
    q = queue_class(keys)
    shadow = list(keys)
    for item, new_key in updates:
        item = item % len(shadow)
        q.update(item, new_key)
        shadow[item] = new_key
        assert q.is_valid()
        min_item, min_key = q.min()
        assert min_key == min(shadow)
        assert shadow[min_item] == min_key


# ---------------------------------------------------------------------------
# operation-by-operation equivalence of the two implementations
# ---------------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(
    keys=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=25),
    updates=st.lists(
        st.tuples(st.integers(min_value=0, max_value=24), st.floats(min_value=0, max_value=1e6)),
        max_size=40,
    ),
    tie_every=st.integers(min_value=0, max_value=3),
)
def test_property_array_heap_mirrors_object_queue(keys, updates, tie_every):
    """Same key sequence + updates → identical heap layouts and minima.

    ``tie_every`` coerces a fraction of update keys onto existing values so
    tie-handling (strict-comparison sifts leave order untouched) is exercised,
    not just generic keys.
    """
    reference = IndexedPriorityQueue(keys)
    heap = ArrayHeap(keys)
    assert list(heap.items) == reference._heap
    assert list(heap.positions) == reference._position
    for step, (item, new_key) in enumerate(updates):
        item = item % len(keys)
        if tie_every and step % (tie_every + 1) == tie_every:
            new_key = reference._keys[(item + 1) % len(keys)]  # force a tie
        reference.update(item, new_key)
        heap.update(item, new_key)
        assert list(heap.items) == reference._heap
        assert list(heap.positions) == reference._position
        assert list(heap.keys) == reference._keys
        assert heap.min() == reference.min()
    assert heap.is_valid() and reference.is_valid()


# ---------------------------------------------------------------------------
# seeded kernel equivalence across the conformance corpus
# ---------------------------------------------------------------------------


def _corpus_networks():
    from repro.zoo.corpus import corpus_entries

    return [(entry.name, entry.model.network()) for entry in corpus_entries()]


@pytest.mark.parametrize(
    "name,network", _corpus_networks(), ids=lambda v: v if isinstance(v, str) else ""
)
def test_numpy_kernel_identical_under_either_queue(name, network):
    """The numpy next-reaction kernel is queue-implementation independent.

    Wiring the kernel to the object-level queue (via the
    ``_NEXT_REACTION_QUEUE`` seam) must reproduce the ArrayHeap trajectories
    bit for bit on every conformance-corpus model: the array port changed the
    data layout, never the algorithm.
    """
    from repro.sim.kernels import numpy_backend

    def run():
        return make_simulator(network, engine="next-reaction", seed=37).run(
            max_steps=300, backend="numpy"
        )

    assert numpy_backend._NEXT_REACTION_QUEUE is ArrayHeap
    with_heap = run()
    original = numpy_backend._NEXT_REACTION_QUEUE
    numpy_backend._NEXT_REACTION_QUEUE = IndexedPriorityQueue
    try:
        with_object_queue = run()
    finally:
        numpy_backend._NEXT_REACTION_QUEUE = original

    np.testing.assert_array_equal(with_heap.times, with_object_queue.times)
    np.testing.assert_array_equal(
        with_heap.reaction_indices, with_object_queue.reaction_indices
    )
    assert with_heap.final_time == with_object_queue.final_time
    assert with_heap.stop_reason == with_object_queue.stop_reason
