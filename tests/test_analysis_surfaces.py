"""Surface tests for analysis utilities the bigger suites only touch in passing.

These exercise the inline (single-process) paths of the parameter sweep, the
trajectory accessors, the rate-ladder queries, the robustness report and the
``python -m repro`` entry point — thin but load-bearing surfaces that the
coverage floor (CI ``--cov-fail-under``) keeps honest.
"""

from __future__ import annotations

import runpy
import sys

import numpy as np
import pytest

from repro.analysis import ParameterSweep, robustness_report
from repro.analysis.sweep import ExperimentMeasure, SweepResult
from repro.api import Experiment
from repro.core import synthesize_distribution
from repro.core.rates import STOCHASTIC_CATEGORIES, RateLadder
from repro.errors import AnalysisError, RateLadderError
from repro.sim import OutcomeThresholds, make_simulator
from repro.sim.events import SpeciesThreshold


class TestParameterSweepInline:
    @staticmethod
    def build(scale):
        from repro.crn import parse_network

        network = parse_network(
            f"init: ea = {scale}\ninit: eb = {100 - scale}\nea ->{{1}} da\neb ->{{1}} db"
        )
        stopping = OutcomeThresholds({"A": ("da", 1), "B": ("db", 1)})
        return Experiment.from_network(network, stopping=stopping).targeting(
            {"A": scale / 100, "B": 1 - scale / 100}
        )

    def test_default_measure_rows(self):
        sweep = ParameterSweep.over_experiments(
            "scale", [20, 50], self.build, trials=40, seed=3
        )
        result = sweep.run()
        assert result.columns[0] == "scale"
        assert result.column("scale") == [20, 50]
        assert all("tv_distance" in row for row in result.rows)
        assert all(0.0 <= row["tv_distance"] <= 1.0 for row in result.rows)

    def test_custom_row_and_progress(self):
        messages = []
        sweep = ParameterSweep.over_experiments(
            "scale",
            [30],
            self.build,
            row=lambda value, result: {"decided": result.decided_fraction()},
            trials=20,
            seed=1,
        )
        result = sweep.run(progress=messages.append)
        assert messages == ["scale = 30"]
        assert result.rows[0]["decided"] == 1.0

    def test_exact_engine_measures_are_sweepable(self):
        """The fsp oracle plugs into sweeps like any sampling engine."""
        from repro.sim.fsp import DominantSpeciesClassifier

        def build(scale):
            return TestParameterSweepInline.build(scale).classify_states(
                DominantSpeciesClassifier({"A": "da", "B": "db"})
            )

        result = ParameterSweep.over_experiments(
            "scale", [20, 50], build, engine="fsp"
        ).run()
        assert result.rows[0]["p[A]"] == pytest.approx(0.2, abs=1e-12)
        assert result.rows[1]["p[A]"] == pytest.approx(0.5, abs=1e-12)
        assert result.rows[0]["tv_distance"] == pytest.approx(0.0, abs=1e-12)

    def test_result_table_csv_and_errors(self, tmp_path):
        result = SweepResult(parameter="x", rows=[{"x": 1, "y": 2.0}, {"x": 2, "y": 3.0}])
        assert result.columns == ["x", "y"]
        text = result.format()
        assert "x" in text and "y" in text
        path = result.to_csv(tmp_path / "rows.csv")
        assert path.read_text().startswith("x,y")
        with pytest.raises(AnalysisError):
            result.column("nope")
        assert SweepResult(parameter="x").columns == ["x"]
        assert SweepResult(parameter="x").column("anything") == []

    def test_invalid_configuration(self):
        with pytest.raises(AnalysisError):
            ParameterSweep("x", [], lambda v: {})
        sweep = ParameterSweep("x", [1], lambda v: {"y": v})
        with pytest.raises(AnalysisError):
            sweep.run(workers=0)

    def test_experiment_measure_is_reusable(self):
        measure = ExperimentMeasure(self.build, trials=20, seed=2)
        row = measure(40)
        assert set(row) == {"p[A]", "p[B]", "tv_distance"}


class TestTrajectoryAccessors:
    @pytest.fixture
    def trajectory(self, birth_death_network):
        simulator = make_simulator(birth_death_network, engine="direct", seed=4)
        return simulator.run(
            stopping=SpeciesThreshold("x", 5),
            record_states=True,
            max_steps=10_000,
        )

    def test_firing_queries(self, trajectory):
        assert trajectory.n_firings > 0
        total = sum(trajectory.count_firings(j) for j in range(2))
        assert total == trajectory.n_firings
        # Reaction 0 is the birth reaction; it must fire first from x=0.
        assert trajectory.first_firing([0, 1]) == 0
        assert trajectory.first_firing([99]) is None

    def test_species_series_and_summary(self, trajectory):
        series = trajectory.species_series("x")
        assert series[-1] == trajectory.final_count("x") == 5
        assert np.all(series >= 0)
        with pytest.raises(ValueError):
            trajectory.species_series("nope")
        assert "stop=condition" in trajectory.summary()
        assert repr(trajectory) == trajectory.summary()

    def test_series_requires_snapshots(self, birth_death_network):
        simulator = make_simulator(birth_death_network, engine="direct", seed=4)
        bare = simulator.run(stopping=SpeciesThreshold("x", 3), max_steps=10_000)
        with pytest.raises(ValueError):
            bare.species_series("x")


class TestRateLadder:
    def test_category_rates_and_dict(self):
        ladder = RateLadder(gamma=10.0, base_rate=2.0)
        assert ladder.initializing == ladder.working == 2.0
        assert ladder.reinforcing == ladder.stabilizing == 20.0
        assert ladder.purifying == 200.0
        as_dict = ladder.as_dict()
        assert set(as_dict) == set(STOCHASTIC_CATEGORIES)
        assert as_dict["purifying"] == 200.0

    def test_paper_example_and_errors(self):
        paper = RateLadder.paper_example()
        assert paper.gamma == 1e3 and paper.purifying == 1e6
        with pytest.raises(RateLadderError):
            RateLadder(gamma=0.5)
        with pytest.raises(RateLadderError):
            RateLadder(gamma=10.0, base_rate=0.0)
        with pytest.raises(RateLadderError):
            paper.rate_for("not-a-category")


class TestRobustnessReport:
    def test_report_shape_and_noise_floor(self):
        system = synthesize_distribution({"a": 0.5, "b": 0.5}, gamma=100.0, scale=10)
        results = robustness_report(
            system, n_trials=30, n_perturbations=1, seed=7
        )
        # Baseline + one rate + one quantity perturbation.
        assert len(results) == 3
        assert results[0].description == "unperturbed"
        for result in results:
            assert 0.0 <= result.tv_from_target <= 1.0
            assert result.distribution


def test_python_dash_m_entry_point(monkeypatch, capsys):
    """``python -m repro engines`` resolves through __main__ and exits 0."""
    monkeypatch.setattr(sys, "argv", ["repro", "engines"])
    with pytest.raises(SystemExit) as excinfo:
        runpy.run_module("repro", run_name="__main__")
    assert excinfo.value.code == 0
    assert "fsp" in capsys.readouterr().out
