"""Tests for campaigns: grids, dedup, resume, pool execution, manifests."""

from __future__ import annotations

import asyncio

import pytest

from repro.api import Experiment
from repro.errors import CampaignError
from repro.store import (
    Campaign,
    CampaignCell,
    CampaignRunner,
    ResultStore,
)


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")


@pytest.fixture
def experiment() -> Experiment:
    return Experiment.from_distribution({"1": 0.5, "2": 0.5}, gamma=100)


@pytest.fixture
def campaign(experiment) -> Campaign:
    return Campaign.grid(
        "demo",
        experiment,
        trials=40,
        engines=("direct", "batch-direct"),
        seeds=(1, 2),
    )


class CountingRunner(CampaignRunner):
    """Runner that records every payload actually computed (the spy)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.computed: list[dict] = []

    def _compute(self, payload):
        self.computed.append(dict(payload))
        return super()._compute(payload)


class TestCampaignConstruction:
    def test_grid_builds_product(self, experiment):
        campaign = Campaign.grid(
            "grid",
            experiment,
            engines=("direct",),
            backends=("python", "numpy"),
            seeds=(1, 2, 3),
        )
        assert len(campaign.cells) == 6
        assert campaign.cells[0].name == "engine=direct/backend=python/seed=1"

    def test_grid_with_programs(self):
        base = Experiment.from_distribution({"a": 0.5, "b": 0.5}, gamma=50)
        campaign = Campaign.grid(
            "programmed",
            base,
            programs=({"e_a": 10}, {"e_a": 50}),
            seeds=(1,),
        )
        assert len(campaign.cells) == 2
        keys = [key for _, _, key in campaign.resolve()]
        assert keys[0] != keys[1]  # programs change the fingerprint

    def test_empty_campaign_rejected(self):
        with pytest.raises(CampaignError, match="no cells"):
            Campaign("empty", [])
        with pytest.raises(CampaignError, match="no cells"):
            Campaign.grid("empty", None, engines=())

    def test_duplicate_cell_names_rejected(self, experiment):
        cell = CampaignCell("same", experiment, trials=10)
        with pytest.raises(CampaignError, match="duplicate"):
            Campaign("dupes", [cell, CampaignCell("same", experiment, trials=20)])

    def test_campaign_id_is_stable(self, experiment, campaign):
        rebuilt = Campaign.grid(
            "demo",
            experiment,
            trials=40,
            engines=("direct", "batch-direct"),
            seeds=(1, 2),
        )
        assert campaign.campaign_id() == rebuilt.campaign_id()

    def test_workers_validation(self, store):
        with pytest.raises(CampaignError, match="workers"):
            CampaignRunner(store, workers=0)


class TestCampaignRun:
    def test_first_run_computes_everything(self, store, campaign):
        events = []
        result = CampaignRunner(store).run(campaign, progress=events.append)
        assert len(result.outcomes) == 4
        assert {o.status for o in result.outcomes} == {"computed"}
        assert len(result.computed_keys()) == 4
        assert result.cached_keys() == []
        assert len(store.keys()) == 4
        # streaming progress: one event per cell, completed counts monotonic
        assert [e.completed for e in events] == [1, 2, 3, 4]
        assert all(e.total == 4 for e in events)

    def test_second_run_is_all_cache(self, store, campaign):
        CampaignRunner(store).run(campaign)
        runner = CountingRunner(store)
        result = runner.run(campaign)
        assert runner.computed == []
        assert {o.status for o in result.outcomes} == {"cached"}

    def test_duplicate_cells_computed_once(self, store, experiment):
        cells = [
            CampaignCell("one", experiment, trials=30, seed=1),
            CampaignCell("two", experiment, trials=30, seed=1),  # same identity
        ]
        runner = CountingRunner(store)
        result = runner.run(Campaign("dedup", cells))
        assert len(runner.computed) == 1
        assert len(store.keys()) == 1
        one, two = result.outcomes
        assert one.key == two.key
        assert one.result.to_json() == two.result.to_json()

    def test_results_by_cell_name(self, store, campaign):
        result = CampaignRunner(store).run(campaign)
        assert set(result.results) == {cell.name for cell in campaign.cells}
        rows = result.rows()
        assert rows[0]["status"] == "computed"
        assert {row["engine"] for row in rows} == {"direct", "batch-direct"}

    def test_manifest_persisted_and_updated(self, store, campaign):
        runner = CampaignRunner(store)
        result = runner.run(campaign)
        manifest = store.load_campaign(result.campaign_id)
        assert manifest["name"] == "demo"
        assert {cell["status"] for cell in manifest["cells"]} == {"computed"}
        assert store.campaign_ids() == [result.campaign_id]
        rerun = runner.run(campaign)
        manifest = store.load_campaign(rerun.campaign_id)
        assert {cell["status"] for cell in manifest["cells"]} == {"cached"}

    def test_interrupted_campaign_resumes_only_missing(self, store, campaign):
        # Interrupt: the runner dies after two successful computes.
        class Dying(CountingRunner):
            def _compute(self, payload):
                if len(self.computed) == 2:
                    raise RuntimeError("simulated crash")
                return super()._compute(payload)

        dying = Dying(store)
        with pytest.raises(CampaignError, match="failed"):
            dying.run(campaign)
        assert len(store.keys()) == 2  # the finished cells persisted

        # Resume: the spy proves only the missing cells are computed.
        resumed = CountingRunner(store)
        result = resumed.run(campaign)
        assert len(resumed.computed) == 2
        statuses = sorted(o.status for o in result.outcomes)
        assert statuses == ["cached", "cached", "computed", "computed"]
        assert len(store.keys()) == 4

    def test_campaign_results_match_store_path_simulation(
        self, store, campaign, tmp_path
    ):
        # Campaign cells execute the canonical store path (misses simulate
        # the canonical network representative, so isomorphic cells share
        # one realization); the reference is therefore simulate(store=...),
        # which follows the same path, on an independent store.
        result = CampaignRunner(store).run(campaign)
        cell = campaign.cells[0]
        direct = cell.experiment.simulate(
            trials=cell.trials,
            engine=cell.engine,
            seed=cell.seed,
            store=ResultStore(tmp_path / "reference"),
        )
        assert result.results[cell.name].to_json() == direct.to_json()

    def test_pool_execution_matches_inline(self, tmp_path, experiment):
        campaign_a = Campaign.grid(
            "pool", experiment, trials=40, engines=("direct",), seeds=(1, 2, 3)
        )
        inline_store = ResultStore(tmp_path / "inline")
        pool_store = ResultStore(tmp_path / "pool")
        inline = CampaignRunner(inline_store, workers=1).run(campaign_a)
        pooled = CampaignRunner(pool_store, workers=2).run(campaign_a)
        for name, run in inline.results.items():
            assert pooled.results[name].to_json() == run.to_json()

    def test_arun_async(self, store, campaign):
        result = asyncio.run(CampaignRunner(store).arun(campaign))
        assert len(result.computed_keys()) == 4
