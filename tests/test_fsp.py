"""Tests for the sparse finite-state-projection solver (repro.sim.fsp)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import outcome_probabilities
from repro.api import Experiment
from repro.api.results import RunResult
from repro.crn import parse_network
from repro.errors import EnsembleError, ExperimentError, FspError, SimulationError
from repro.sim import EnsembleRunner, make_simulator
from repro.sim.fsp import (
    UNDECIDED,
    DominantSpeciesClassifier,
    FspEngine,
    FspOptions,
    absorption_probabilities,
    build_generator,
    enumerate_states,
)
from repro.sim.propensity import CompiledNetwork
from repro.sim.registry import registry


@pytest.fixture
def race_to_one():
    """Three-way first-firing race: exact outcome probabilities 0.3/0.4/0.3."""
    return parse_network(
        """
        init: e1 = 30
        init: e2 = 40
        init: e3 = 30
        e1 ->{1} d1
        e2 ->{1} d2
        e3 ->{1} d3
        """,
        name="race",
    )


def first_catalyst(state):
    for label, marker in (("1", "d1"), ("2", "d2"), ("3", "d3")):
        if state.get(marker, 0) >= 1:
            return label
    return None


class TestEnumeration:
    def test_race_space_is_start_plus_absorbing(self, race_to_one):
        compiled = CompiledNetwork.compile(race_to_one)
        space = enumerate_states(
            compiled, compiled.initial_counts(), classify=first_catalyst
        )
        # Initial state plus one absorbing state per outcome.
        assert space.n_states == 4
        assert space.labels[0] is None
        assert sorted(space.outcome_labels()) == ["1", "2", "3"]
        assert not space.truncated

    def test_unbounded_network_truncates_at_max_states(self):
        network = parse_network("src ->{1} src + x\ninit: src = 1")
        compiled = CompiledNetwork.compile(network)
        space = enumerate_states(
            compiled, compiled.initial_counts(), max_states=50, on_overflow="truncate"
        )
        assert space.truncated
        assert space.n_states == 50
        # The boundary state leaks its entire outflow.
        assert space.leak_rates().sum() > 0.0

    def test_on_overflow_raise(self):
        network = parse_network("src ->{1} src + x\ninit: src = 1")
        compiled = CompiledNetwork.compile(network)
        with pytest.raises(FspError):
            enumerate_states(
                compiled, compiled.initial_counts(), max_states=50, on_overflow="raise"
            )

    def test_count_caps_bound_the_space(self):
        network = parse_network("src ->{1} src + x\ninit: src = 1")
        compiled = CompiledNetwork.compile(network)
        space = enumerate_states(
            compiled, compiled.initial_counts(), count_caps={"x": 9}
        )
        assert space.truncated
        assert space.n_states == 10  # x in 0..9
        assert space.states[:, [s.name for s in compiled.species].index("x")].max() == 9

    def test_count_caps_unknown_species_rejected(self, race_to_one):
        compiled = CompiledNetwork.compile(race_to_one)
        with pytest.raises(FspError):
            enumerate_states(
                compiled, compiled.initial_counts(), count_caps={"nope": 3}
            )

    def test_generator_conserves_or_leaks_mass(self, race_to_one):
        compiled = CompiledNetwork.compile(race_to_one)
        space = enumerate_states(
            compiled, compiled.initial_counts(), classify=first_catalyst
        )
        generator = build_generator(space)
        # Column sums are zero for kept transitions (mass moves, never appears).
        sums = np.asarray(generator.sum(axis=0)).ravel()
        assert np.all(sums <= 1e-12)


class TestAbsorption:
    def test_matches_exact_race(self, race_to_one):
        result = FspEngine(race_to_one).outcome_probabilities(first_catalyst)
        assert result.probability("1") == pytest.approx(0.3, abs=1e-12)
        assert result.probability("2") == pytest.approx(0.4, abs=1e-12)
        assert result.probability("3") == pytest.approx(0.3, abs=1e-12)
        assert result.n_transient == 1

    def test_decided_renormalizes(self):
        network = parse_network("init: x = 1\nx ->{1} a\nx ->{1} junk")
        result = FspEngine(network).outcome_probabilities(
            lambda s: "a" if s.get("a", 0) else None
        )
        assert result.probability(UNDECIDED) == pytest.approx(0.5)
        assert result.decided()["a"] == pytest.approx(1.0)

    def test_initial_state_already_classified(self):
        network = parse_network("x ->{1} y\ninit: x = 1")
        result = FspEngine(network).outcome_probabilities(lambda s: "done")
        assert result.probabilities == {"done": 1.0}

    def test_initial_dead_end_is_undecided(self):
        network = parse_network("a + b ->{1} c\ninit: a = 1")
        result = FspEngine(network).outcome_probabilities(
            lambda s: "c" if s.get("c", 0) else None
        )
        assert result.probabilities == {UNDECIDED: 1.0}

    def test_truncated_absorption_reports_leak_as_undecided(self):
        # Unbounded growth: with a tight budget some mass escapes the box.
        network = parse_network(
            """
            init: src = 1
            src ->{1} src + x
            src ->{1} done
            """
        )
        engine = FspEngine(network, fsp_options=FspOptions(max_states=10, strict=False))
        result = engine.outcome_probabilities(
            lambda s: "done" if s.get("done", 0) else None
        )
        assert result.probability("done") < 1.0
        assert result.probability(UNDECIDED) > 0.0
        assert result.truncation_error == pytest.approx(
            result.probability(UNDECIDED), abs=1e-12
        )
        assert sum(result.probabilities.values()) == pytest.approx(1.0, abs=1e-9)
        # Under the default strict options the same truncation is an error.
        with pytest.raises(FspError):
            FspEngine(network, fsp_options=FspOptions(max_states=10)).outcome_probabilities(
                lambda s: "done" if s.get("done", 0) else None
            )

    def test_agrees_with_ctmc_on_winner_take_all(self, tiny_two_outcome_network):
        """FSP and the exact CTMC analysis share machinery — and answers."""

        def classify(state):
            if state.get("e_A", 0) == 0 and state.get("e_B", 0) == 0:
                a, b = state.get("d_A", 0), state.get("d_B", 0)
                if a > 0 and b == 0:
                    return "A"
                if b > 0 and a == 0:
                    return "B"
                if a == 0 and b == 0:
                    return "tie"
            return None

        via_ctmc = outcome_probabilities(tiny_two_outcome_network, classify=classify)
        via_fsp = FspEngine(tiny_two_outcome_network).outcome_probabilities(classify)
        assert set(via_ctmc.probabilities) == set(via_fsp.probabilities)
        for label, probability in via_ctmc.probabilities.items():
            assert via_fsp.probability(label) == pytest.approx(probability, abs=1e-12)


class TestTransient:
    def test_birth_death_matches_poisson(self, birth_death_network):
        """dx/dt: birth at 5, death at 0.5 → x(t) ~ Poisson(10(1-e^{-t/2}))."""
        engine = FspEngine(
            birth_death_network,
            fsp_options=FspOptions(count_caps={"x": 60}, tolerance=1e-8),
        )
        result = engine.solve(20.0)
        assert result.error_bound() <= 1e-8
        mean = 10.0 * (1.0 - math.exp(-0.5 * 20.0))
        assert result.mean("x") == pytest.approx(mean, rel=1e-6)
        marginal = result.marginal("x")
        for k in (5, 10, 15):
            poisson = math.exp(-mean) * mean**k / math.factorial(k)
            assert marginal[k] == pytest.approx(poisson, abs=1e-6)

    def test_checkpoint_grid_and_bounds_are_monotone(self, birth_death_network):
        engine = FspEngine(
            birth_death_network,
            fsp_options=FspOptions(count_caps={"x": 25}, checkpoints=6, strict=False),
        )
        result = engine.solve(10.0)
        assert result.times.shape == (6,)
        assert result.times[0] == 0.0 and result.times[-1] == 10.0
        assert result.probabilities.shape == (6, result.space.n_states)
        # p(0) is the initial point mass.
        assert result.probabilities[0, 0] == pytest.approx(1.0)
        # The leak only ever grows.
        bounds = result.error_bounds()
        assert np.all(np.diff(bounds) >= -1e-12)

    def test_adaptive_expansion_meets_tolerance(self, birth_death_network):
        # Start with a cap far too tight; expansion must grow it until the
        # reported bound meets the tolerance.
        engine = FspEngine(
            birth_death_network,
            fsp_options=FspOptions(count_caps={"x": 4}, tolerance=1e-8),
        )
        result = engine.solve(20.0)
        assert result.error_bound() <= 1e-8
        assert result.space.n_states > 5

    def test_strict_truncation_raises(self, birth_death_network):
        engine = FspEngine(
            birth_death_network,
            fsp_options=FspOptions(count_caps={"x": 3}, tolerance=1e-10, expand=False),
        )
        with pytest.raises(FspError):
            engine.solve(20.0)

    def test_state_probability_and_outcome_mass(self, race_to_one):
        engine = FspEngine(race_to_one)
        result = engine.solve(0.5)
        # All mass is on enumerated states (race network is finite).
        assert result.error_bound() <= 1e-9
        start = {"e1": 30, "e2": 40, "e3": 30}
        assert result.state_probability(start, time_index=0) == pytest.approx(1.0)
        mass = result.outcome_probabilities(classify=first_catalyst)
        # By t=0.5 some trajectory weight has produced a catalyst.
        assert mass.get("2", 0.0) > 0.0

    def test_non_uniform_grid_checkpoints_are_exact(self):
        """Explicit non-uniform time grids evaluate p(t) at the given times."""
        network = parse_network("init: x = 1\nx ->{1} y")
        engine = FspEngine(network)
        result = engine.solve(10.0, times=[0.0, 0.1, 10.0])
        # P(x still present at t) = e^{-t}, at the *requested* checkpoints.
        assert result.state_probability({"x": 1}, time_index=1) == pytest.approx(
            math.exp(-0.1), rel=1e-9
        )
        assert result.state_probability({"x": 1}, time_index=2) == pytest.approx(
            math.exp(-10.0), rel=1e-6
        )

    def test_invalid_grids_rejected(self, race_to_one):
        engine = FspEngine(race_to_one)
        with pytest.raises(FspError):
            engine.solve(-1.0)
        with pytest.raises(FspError):
            engine.solve(1.0, times=[0.5, 1.0])
        with pytest.raises(FspError):
            engine.solve(1.0, times=[0.0, 0.0, 1.0])


class TestOptionsAndClassifier:
    def test_options_validation(self):
        with pytest.raises(FspError):
            FspOptions(max_states=0)
        with pytest.raises(FspError):
            FspOptions(tolerance=-1.0)
        with pytest.raises(FspError):
            FspOptions(checkpoints=1)

    def test_dominant_species_classifier(self):
        classify = DominantSpeciesClassifier({"A": "d_A", "B": "d_B"})
        assert classify({"d_A": 2, "d_B": 0}) == "A"
        assert classify({"d_A": 0, "d_B": 3}) == "B"
        assert classify({"d_A": 0, "d_B": 0}) is None
        assert classify({"d_A": 2, "d_B": 2}) is None  # tied lead
        with pytest.raises(FspError):
            DominantSpeciesClassifier({})


class TestEngineProtocol:
    def test_registered_with_distribution_capability(self):
        info = registry.get("fsp")
        assert info.exact and info.deterministic and info.computes_distribution
        assert not info.supports_events
        assert info.options_type is FspOptions

    def test_make_simulator_builds_engine(self, race_to_one):
        engine = make_simulator(race_to_one, engine="fsp")
        assert isinstance(engine, FspEngine)
        with pytest.raises(SimulationError):
            engine.run()

    def test_ensembles_reject_fsp(self, race_to_one):
        with pytest.raises(EnsembleError):
            EnsembleRunner(race_to_one, engine="fsp")

    def test_with_options_copy(self, race_to_one):
        engine = FspEngine(race_to_one)
        tightened = engine.with_options(tolerance=1e-3)
        assert tightened.options.tolerance == 1e-3
        assert engine.options.tolerance == FspOptions().tolerance


class TestExperimentIntegration:
    def test_example1_exact_matches_ctmc_within_1e6(self):
        """Acceptance: fsp through the facade agrees with ctmc on Example 1."""
        experiment = Experiment.from_distribution(
            {"1": 0.3, "2": 0.4, "3": 0.3}, gamma=1e3, scale=100
        )
        result = experiment.simulate(engine="fsp")
        reference = outcome_probabilities(
            experiment.system.network, classify=experiment.system.state_classifier()
        )
        assert set(result.exact) == set(reference.probabilities)
        for label, probability in reference.probabilities.items():
            assert abs(result.exact[label] - probability) < 1e-6
        # The programmed distribution, exactly.
        assert result.frequencies == pytest.approx(
            {"1": 0.3, "2": 0.4, "3": 0.3}, abs=1e-12
        )
        assert result.decided_fraction() == pytest.approx(1.0)

    def test_exact_run_result_shape(self, race_to_one):
        class Race:
            def __call__(self, state):
                return first_catalyst(state)

        result = (
            Experiment.from_network(race_to_one, target={"1": 0.3, "2": 0.4, "3": 0.3})
            .classify_states(Race())
            .simulate(trials=1000, engine="fsp")
        )
        assert result.engine == "fsp"
        assert result.exact_info["n_states"] == 4
        # Nominal counts round to the trial budget.
        assert sum(result.ensemble.outcome_counts.values()) == 1000
        assert result.total_variation() == pytest.approx(0.0, abs=1e-12)
        with pytest.raises(ExperimentError):
            result.decision_times()

    def test_raw_network_without_classifier_raises(self, race_to_one):
        with pytest.raises(ExperimentError):
            Experiment.from_network(race_to_one).simulate(engine="fsp")

    def test_metadata_outcome_map_supplies_classifier(self):
        """Designs round-tripped through JSON keep their exact-oracle hookup."""
        from repro.crn import network_from_json, network_to_json

        system = Experiment.from_distribution({"a": 0.25, "b": 0.75}, gamma=100, scale=4).system
        network = network_from_json(network_to_json(system.network))
        result = Experiment.from_network(network).simulate(engine="fsp")
        assert result.exact["a"] == pytest.approx(0.25, abs=1e-12)
        assert result.exact["b"] == pytest.approx(0.75, abs=1e-12)

    def test_json_round_trip_preserves_exact(self, race_to_one):
        result = (
            Experiment.from_network(race_to_one)
            .classify_states(DominantSpeciesClassifier({"1": "d1", "2": "d2", "3": "d3"}))
            .simulate(engine="fsp")
        )
        restored = RunResult.from_json(result.to_json())
        assert restored.exact == result.exact
        assert restored.exact_info == result.exact_info
        assert restored.frequencies == result.frequencies

    def test_engine_options_flow_through_facade(self, race_to_one):
        result = (
            Experiment.from_network(race_to_one)
            .classify_states(DominantSpeciesClassifier({"1": "d1", "2": "d2", "3": "d3"}))
            .simulate(engine="fsp", engine_options=FspOptions(max_states=10))
        )
        assert result.exact["2"] == pytest.approx(0.4, abs=1e-12)
        bad = Experiment.from_network(race_to_one).classify_states(first_catalyst)
        with pytest.raises(EnsembleError):
            bad.simulate(engine="fsp", engine_options=object())


class TestCli:
    def test_simulate_fsp_flags(self, tmp_path, capsys):
        from repro.cli import main

        design = tmp_path / "design.json"
        assert main([
            "synthesize", "--probabilities", "a=0.25,b=0.75",
            "--gamma", "100", "--scale", "4", "-o", str(design),
        ]) == 0
        capsys.readouterr()
        assert main([
            "simulate", str(design), "--engine", "fsp", "--fsp-max-states", "50000",
        ]) == 0
        out = capsys.readouterr().out
        assert "0.2500" in out and "0.7500" in out

    def test_fsp_flags_require_fsp_engine(self, tmp_path, capsys):
        from repro.cli import main

        design = tmp_path / "design.json"
        main(["synthesize", "--probabilities", "a=0.5,b=0.5", "-o", str(design)])
        capsys.readouterr()
        assert main([
            "simulate", str(design), "--engine", "direct", "--fsp-max-states", "10",
        ]) == 2
        assert "--fsp-max-states" in capsys.readouterr().err

    def test_engines_matrix_lists_distribution_column(self, capsys):
        from repro.cli import main

        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "distribution" in out
        assert "fsp" in out
