"""Tests for repro.crn.species."""

from __future__ import annotations

import pytest

from repro.crn import Species, SpeciesRole, as_species, species_list
from repro.errors import SpeciesError


class TestSpeciesConstruction:
    def test_simple_name(self):
        assert Species("a").name == "a"

    def test_name_with_digits_and_underscore(self):
        assert Species("e_1").name == "e_1"

    def test_name_with_prime(self):
        assert Species("x'").name == "x'"

    def test_name_with_namespace_dot(self):
        assert Species("log.x").name == "log.x"

    @pytest.mark.parametrize("bad", ["", "1x", "a b", "a+b", "a-b", None, 7])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(SpeciesError):
            Species(bad)

    def test_default_role_is_generic(self):
        assert Species("a").role is SpeciesRole.GENERIC

    def test_with_role(self):
        assert Species("a").with_role(SpeciesRole.INPUT).role is SpeciesRole.INPUT


class TestSpeciesEquality:
    def test_equal_by_name(self):
        assert Species("a") == Species("a")

    def test_role_does_not_affect_equality(self):
        assert Species("a", role=SpeciesRole.INPUT) == Species("a", role=SpeciesRole.OUTPUT)

    def test_hashable_and_deduplicates(self):
        assert len({Species("a"), Species("a"), Species("b")}) == 2

    def test_ordering_by_name(self):
        assert Species("a") < Species("b")

    def test_str_is_name(self):
        assert str(Species("cro2")) == "cro2"


class TestPrefixing:
    def test_with_prefix(self):
        assert Species("x").with_prefix("log").name == "log.x"

    def test_with_prefix_custom_separator(self):
        assert Species("x").with_prefix("m1", separator="_").name == "m1_x"

    def test_empty_prefix_is_identity(self):
        s = Species("x")
        assert s.with_prefix("") is s

    def test_prefix_preserves_role(self):
        s = Species("x", role=SpeciesRole.FOOD).with_prefix("mod")
        assert s.role is SpeciesRole.FOOD


class TestCoercion:
    def test_as_species_from_string(self):
        assert as_species("abc") == Species("abc")

    def test_as_species_passthrough(self):
        s = Species("a")
        assert as_species(s) is s

    def test_as_species_with_role(self):
        assert as_species("a", role=SpeciesRole.CATALYST).role is SpeciesRole.CATALYST

    def test_as_species_rejects_other_types(self):
        with pytest.raises(SpeciesError):
            as_species(3.5)

    def test_species_list(self):
        result = species_list(["a", Species("b")])
        assert result == [Species("a"), Species("b")]
