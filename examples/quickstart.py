#!/usr/bin/env python
"""Quickstart: synthesize a probability distribution and check it by simulation.

This reproduces Example 1 of the paper (Section 2.1): a set of reactions that
produces outcome types d1/d2/d3 with probabilities 0.3 / 0.4 / 0.3.  The
synthesizer emits the five reaction categories (initializing, reinforcing,
stabilizing, purifying, working); Monte-Carlo simulation then confirms the
realized outcome frequencies match the programmed distribution.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import os

from repro import Experiment
from repro.core import verify_by_sampling

TRIALS = int(os.environ.get("REPRO_TRIALS", "1000"))


def main() -> None:
    # 1. Specify the target distribution and synthesize the reactions.
    experiment = Experiment.from_distribution(
        {"1": 0.3, "2": 0.4, "3": 0.3},
        gamma=1e3,     # rate separation (Equation 1); larger = lower error
        scale=100,     # total input molecules: E1=30, E2=40, E3=30 as in Example 1
    )
    system = experiment.system

    print("=== Synthesized design ===")
    print(system.describe())
    print()
    print(system.network.pretty())
    print()

    # 2. Sample the outcome distribution by stochastic simulation (the
    #    batch-direct engine advances all trials in lock-step vectorized steps).
    print(f"=== Monte-Carlo check ({TRIALS} trials) ===")
    result = experiment.simulate(trials=TRIALS, engine="batch-direct", seed=2007)
    print(result.summary())
    print()

    # 3. A formal verification report (TV distance + chi-square goodness of fit).
    report = verify_by_sampling(system, n_trials=TRIALS, seed=42, tolerance=0.05)
    print("=== Verification ===")
    print(report.summary())


if __name__ == "__main__":
    main()
