#!/usr/bin/env python
"""Engineered stochastic dosing: the paper's motivating scenario (Section 1.2).

Bacteria are engineered to invade a tumour and produce a drug, but only a
*fraction* m/n of the (identical) population should respond, so the total dose
is correct.  Each bacterium runs the same synthesized circuit and makes an
independent probabilistic choice: respond (produce the drug) or stay inert.

This script:

1. synthesizes a two-outcome circuit with P(respond) = m/n;
2. simulates a population of bacteria, each running the circuit independently,
   and checks that the responding fraction concentrates around m/n;
3. shows the *programmable* version: the response probability depends
   logarithmically on the quantity of an injected compound, built by composing
   a logarithm module with the stochastic module — so the clinician can adjust
   the dose by changing the injected amount.

Run:  python examples/drug_dosage.py
"""

from __future__ import annotations

import math
import os

from repro.analysis import format_table, wilson_interval
from repro.core import (
    DistributionSpec,
    OutcomeSpec,
    SystemComposer,
    build_stochastic_module,
    synthesize_distribution,
)
from repro.core.modules import assimilation_module, linear_module, logarithm_module
from repro.core.rates import TierScheme
from repro.sim import CategoryFiringCondition, EnsembleRunner, SimulationOptions

POPULATION = int(os.environ.get("REPRO_TRIALS", "400"))


def fixed_fraction_demo(m: int = 30, n: int = 100) -> None:
    """Each bacterium responds with probability m/n."""
    print(f"--- Fixed dosing: target respond fraction {m}/{n} = {m / n:.2f} ---")
    system = synthesize_distribution(
        {"respond": m / n, "inert": 1 - m / n}, gamma=1e3, scale=n
    )
    sampled = system.sample_distribution(n_trials=POPULATION, seed=7)
    responders = round(sampled.frequencies.get("respond", 0.0) * POPULATION)
    interval = wilson_interval(responders, POPULATION)
    print(
        f"population of {POPULATION} bacteria -> {responders} responded "
        f"({interval.percent:.1f}% , 95% CI ±{interval.half_width * 100:.1f}%)"
    )
    print()


def programmable_dose_demo() -> None:
    """P(respond) = (10 + 10·log2(C))% for an injected compound quantity C.

    A logarithm module computes log2(C); an assimilation stage moves 10
    molecules of the inert input type to the respond input type per unit of
    the computed value, on a base of 10/90.
    """
    print("--- Programmable dosing: P(respond) = 10% + 10%·log2(compound) ---")
    det_tiers = TierScheme(separation=1e3, base_rate=1e-3)
    rows = []
    for compound in (1, 2, 4, 8, 16):
        composer = SystemComposer("dosing")
        composer.add_module(
            "log", logarithm_module(input_name="compound", output_name="ylog",
                                    tiers=det_tiers)
        )
        # gain of 10: each unit of log2(C) moves 10 molecules of probability.
        composer.add_module(
            "gain",
            linear_module(alpha=1, beta=10, input_name="ylog", output_name="shift",
                          tiers=det_tiers),
        )
        spec = DistributionSpec(
            [OutcomeSpec("respond", outputs={"drug": 1}, target_output=20),
             OutcomeSpec("inert", outputs={"idle": 1}, target_output=20)],
            [0.10, 0.90],
        )
        stochastic = build_stochastic_module(spec, gamma=1e3, scale=100, base_rate=1e-1)
        composer.add_network(stochastic)
        composer.add_module(
            "assim", assimilation_module("e_inert", "e_respond", "shift", tiers=det_tiers)
        )
        network = composer.build(initial={"compound": compound})

        runner = EnsembleRunner(
            network,
            stopping=CategoryFiringCondition("working", 10),
            options=SimulationOptions(record_firings=False),
        )
        result = runner.run(POPULATION // 2, seed=11 + compound)
        responded = result.outcome_counts.get("working[respond]", 0)
        decided = responded + result.outcome_counts.get("working[inert]", 0)
        rows.append(
            {
                "compound": compound,
                "target %": 10 + 10 * math.log2(compound),
                "measured %": 100.0 * responded / max(decided, 1),
                "trials": decided,
            }
        )
    print(format_table(rows, floatfmt="{:.1f}"))
    print()


def main() -> None:
    fixed_fraction_demo()
    programmable_dose_demo()


if __name__ == "__main__":
    main()
