#!/usr/bin/env python
"""Programmable response (Example 2): probabilities as functions of inputs.

The paper's Example 2 asks for

    p1 = 0.3 + 0.02·X1 − 0.03·X2
    p2 = 0.4 + 0.03·X2
    p3 = 0.3 − 0.02·X1

realized by adding "pre-processing" reactions (2·e3 + x1 → 2·e1 and
3·e1 + x2 → 3·e2) ahead of the stochastic module.  This script synthesizes
that design, sweeps the input quantities X1 and X2, and compares the measured
outcome frequencies against the affine target at every sweep point.

Run:  python examples/programmable_response.py
"""

from __future__ import annotations

import os

from repro.analysis import format_table, total_variation
from repro.core import AffineResponseSpec, synthesize_affine_response

TRIALS = int(os.environ.get("REPRO_TRIALS", "400"))


def main() -> None:
    spec = AffineResponseSpec(
        base={"1": 0.3, "2": 0.4, "3": 0.3},
        slopes={
            "1": {"x1": 0.02, "x2": -0.03},
            "2": {"x2": 0.03},
            "3": {"x1": -0.02},
        },
    )
    system = synthesize_affine_response(spec, gamma=1e3, scale=100)

    print("=== Synthesized programmable design ===")
    print(system.describe())
    print()
    print("pre-processing reactions:")
    for _, reaction in system.network.reactions_in_category("preprocessing"):
        print(f"  {reaction}")
    print()

    rows = []
    for x1, x2 in [(0, 0), (3, 0), (6, 0), (0, 5), (5, 5), (10, 8)]:
        inputs = {"x1": x1, "x2": x2}
        sampled = system.sample_distribution(n_trials=TRIALS, seed=100 + 7 * x1 + x2,
                                             inputs=inputs)
        target = sampled.target
        measured = sampled.frequencies
        rows.append(
            {
                "X1": x1,
                "X2": x2,
                "p1 target": target["1"],
                "p1 measured": measured.get("1", 0.0),
                "p2 target": target["2"],
                "p2 measured": measured.get("2", 0.0),
                "p3 target": target["3"],
                "p3 measured": measured.get("3", 0.0),
                "TV": total_variation(measured, target),
            }
        )

    print(f"=== Input sweep ({TRIALS} trials per point) ===")
    print(format_table(rows, floatfmt="{:.3f}"))


if __name__ == "__main__":
    main()
