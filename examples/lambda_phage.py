#!/usr/bin/env python
"""Reproduce the lambda bacteriophage experiment (Section 3, Figure 5).

Sweeps the input quantity MOI from 1 through 10 and, for each MOI, estimates
the probability that the cI2 threshold is reached:

* for the natural-model surrogate (per-MOI lookup of Equation 14 — see
  DESIGN.md for the substitution note), and
* for the synthetic model built through the synthesis API (fan-out +
  logarithm + linear modules + assimilation + two-outcome stochastic module).

Both series are fitted with the paper's three-term model
``a + b·log2(MOI) + c·MOI`` and compared against Equation 14 (15, 6, 1/6).

Run:  python examples/lambda_phage.py             (≈200 trials/point, ~1 min)
      REPRO_TRIALS=50 python examples/lambda_phage.py   (fast, noisier)
"""

from __future__ import annotations

import os

from repro.lambda_phage import figure4_network, run_figure5_experiment

TRIALS = int(os.environ.get("REPRO_TRIALS", "200"))
MOI_VALUES = tuple(range(1, 11))


def main() -> None:
    print("=== The literal Figure-4 model (structural census) ===")
    literal = figure4_network(moi=1)
    print(literal.summary())
    print(f"  (paper: 19 reactions in 17 types)")
    print()

    print(f"=== Figure 5: MOI sweep, {TRIALS} trials per model per point ===")
    result = run_figure5_experiment(moi_values=MOI_VALUES, n_trials=TRIALS, seed=2007)
    print(result.summary())


if __name__ == "__main__":
    main()
