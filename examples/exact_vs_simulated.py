#!/usr/bin/env python
"""Exact CTMC analysis vs Monte-Carlo simulation of a small stochastic module.

For small instances the outcome probabilities of a synthesized design can be
computed *exactly* by treating the network as a continuous-time Markov chain
and solving for its absorption probabilities — no sampling noise.  This script
builds a two-outcome module with a handful of molecules, computes the exact
outcome distribution, and shows Monte-Carlo estimates converging to it as the
trial count grows.  It also shows how the exact winner-take-all "tie" mass
(both catalysts annihilated) shrinks as the rate separation γ increases — the
same effect Figure 3 measures by sampling.

Run:  python examples/exact_vs_simulated.py
"""

from __future__ import annotations

from repro.analysis import format_table, outcome_probabilities
from repro.api import Experiment
from repro.core import DistributionSpec, OutcomeSpec, build_stochastic_module
from repro.sim import CategoryFiringCondition


def classify(state: dict) -> "str | None":
    """Outcome = the sole surviving catalyst once the inputs are consumed."""
    if state.get("e_A", 0) == 0 and state.get("e_B", 0) == 0:
        a, b = state.get("d_A", 0), state.get("d_B", 0)
        if a > 0 and b == 0:
            return "A"
        if b > 0 and a == 0:
            return "B"
        if a == 0 and b == 0:
            return "tie"
    return None


def build(gamma: float):
    spec = DistributionSpec(
        [OutcomeSpec("A", target_output=3), OutcomeSpec("B", target_output=3)],
        [0.25, 0.75],
    )
    return build_stochastic_module(spec, gamma=gamma, scale=4)


def main() -> None:
    print("=== Exact outcome probabilities (2-outcome module, 4 input molecules) ===")
    rows = []
    for gamma in (10.0, 100.0, 1000.0):
        result = outcome_probabilities(build(gamma), classify=classify)
        rows.append(
            {
                "gamma": gamma,
                "P(A)": result.probability("A"),
                "P(B)": result.probability("B"),
                "P(tie)": result.probability("tie"),
                "states": result.n_states,
            }
        )
    print(format_table(rows, floatfmt="{:.5f}"))
    print("(programmed target: P(A)=0.25, P(B)=0.75; the tie mass is the module's")
    print(" winner-take-all error and shrinks as gamma grows — the Figure-3 effect)")
    print()

    print("=== Monte-Carlo estimates converging to the exact answer (gamma=100) ===")
    network = build(100.0)
    exact = outcome_probabilities(network, classify=classify).decided()
    rows = []
    for trials in (100, 400, 1600):
        ensemble = Experiment.from_network(
            network, stopping=CategoryFiringCondition("working", 3)
        ).simulate(trials=trials, seed=9).ensemble
        measured = ensemble.outcome_distribution()
        rows.append(
            {
                "trials": trials,
                "P(A) sampled": measured.get("working[A]", 0.0),
                "P(A) exact": exact["A"],
                "abs error": abs(measured.get("working[A]", 0.0) - exact["A"]),
            }
        )
    print(format_table(rows, floatfmt="{:.4f}"))


if __name__ == "__main__":
    main()
