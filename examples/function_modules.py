#!/usr/bin/env python
"""Tour of the deterministic functional modules (Section 2.2.1).

Each module computes a function of molecular quantities purely with reactions:

* linear          α·Y = β·X
* exponentiation  Y = 2^X
* logarithm       Y = log2(X)
* power           Y = X^P
* isolation       Y = 1

This script settles each module over a sweep of inputs and prints the
chemically computed value next to the ideal one, plus a composition demo
(6·log2(X), the term used by the lambda-phage model).

Run:  python examples/function_modules.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import SystemComposer, settle_module
from repro.core.modules import (
    exponentiation_module,
    isolation_module,
    linear_module,
    logarithm_module,
    power_module,
)
from repro.sim import DirectMethodSimulator, SimulationOptions


def sweep_module(title, module_factory, inputs_list, seed=1):
    rows = []
    for inputs in inputs_list:
        module = module_factory()
        result = settle_module(module, inputs, seed=seed)
        expected = module.expected_outputs(inputs)
        rows.append(
            {
                **{k.upper(): v for k, v in inputs.items()},
                "computed Y": result.output("y"),
                "ideal Y": expected["y"],
                "firings": result.n_firings,
            }
        )
    print(f"--- {title} ---")
    print(format_table(rows, floatfmt="{:.3g}"))
    print()


def composition_demo() -> None:
    print("--- composition: Y = 6·log2(X) (logarithm followed by a gain-6 linear) ---")
    rows = []
    for x in (2, 4, 8, 16, 32):
        composer = SystemComposer("chain")
        composer.add_module("log", logarithm_module(input_name="x", output_name="mid"))
        composer.add_module("gain", linear_module(alpha=1, beta=6,
                                                  input_name="mid", output_name="y"))
        network = composer.build(initial={"x": x})
        trajectory = DirectMethodSimulator(network, seed=5).run(
            options=SimulationOptions(max_time=1.0, record_firings=False)
        )
        rows.append({"X": x, "computed Y": trajectory.final_count("y"),
                     "ideal Y": 6 * (x.bit_length() - 1)})
    print(format_table(rows))
    print()


def main() -> None:
    sweep_module("linear: Y = 3·X / 2", lambda: linear_module(alpha=2, beta=3),
                 [{"x": x} for x in (2, 4, 6, 10, 20)])
    sweep_module("exponentiation: Y = 2^X", exponentiation_module,
                 [{"x": x} for x in (0, 1, 2, 3, 4, 5, 6)])
    sweep_module("logarithm: Y = log2(X)", logarithm_module,
                 [{"x": x} for x in (2, 4, 8, 16, 32, 64)])
    sweep_module("power: Y = X^P", power_module,
                 [{"x": 2, "p": 2}, {"x": 2, "p": 3}, {"x": 3, "p": 2}, {"x": 4, "p": 2}])
    sweep_module("isolation: Y = 1 (from any starting quantity)",
                 lambda: isolation_module(initial_output=25, initial_catalyst=5), [{}])
    composition_demo()


if __name__ == "__main__":
    main()
